#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>

#include "apps/gravity/gravity.hpp"
#include "core/forest.hpp"

namespace paratreet {
namespace {

Configuration smallConfig() {
  Configuration conf;
  conf.min_partitions = 6;
  conf.min_subtrees = 6;
  conf.bucket_size = 8;
  conf.decomp_type = DecompType::eSfc;
  conf.tree_type = TreeType::eOct;
  return conf;
}

std::vector<Particle> runGravity(rts::Runtime& rt, CacheModel model,
                                 int fetch_depth = 3,
                                 std::size_t n = 600) {
  Configuration conf = smallConfig();
  conf.cache_model = model;
  conf.fetch_depth = fetch_depth;
  Forest<CentroidData, OctTreeType> forest(rt, conf);
  forest.load(makeParticles(uniformCube(n, 99)));
  forest.decompose();
  forest.build();
  forest.traverse<GravityVisitor>(GravityVisitor{});
  return forest.collect();
}

class CacheModelTest : public ::testing::TestWithParam<CacheModel> {};

TEST_P(CacheModelTest, MatchesWaitFreeResults) {
  rts::Runtime rt({3, 2});
  const auto reference = runGravity(rt, CacheModel::kWaitFree);
  const auto result = runGravity(rt, GetParam());
  ASSERT_EQ(reference.size(), result.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    // All models do identical physics; only FP summation order may vary
    // through pause/resume scheduling.
    const double scale = reference[i].acceleration.length() + 1e-12;
    EXPECT_LT((reference[i].acceleration - result[i].acceleration).length(),
              1e-9 * scale)
        << "particle " << i;
  }
}

TEST_P(CacheModelTest, WorksAcrossFetchDepths) {
  rts::Runtime rt({2, 2});
  const auto reference = runGravity(rt, GetParam(), 1, 300);
  const auto deep = runGravity(rt, GetParam(), 6, 300);
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const double scale = reference[i].acceleration.length() + 1e-12;
    EXPECT_LT((reference[i].acceleration - deep[i].acceleration).length(),
              1e-9 * scale);
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, CacheModelTest,
                         ::testing::Values(CacheModel::kWaitFree,
                                           CacheModel::kXWrite,
                                           CacheModel::kPerThread,
                                           CacheModel::kSingleInserter),
                         [](const auto& info) { return toString(info.param); });

TEST(CacheManager, SingleProcNeedsNoFetches) {
  rts::Runtime rt({1, 2});
  Configuration conf = smallConfig();
  Forest<CentroidData, OctTreeType> forest(rt, conf);
  forest.load(makeParticles(uniformCube(500, 3)));
  forest.decompose();
  forest.build();
  forest.traverse<GravityVisitor>(GravityVisitor{});
  const auto stats = forest.cacheStatsTotal();
  EXPECT_EQ(stats.requests_sent, 0u);
  EXPECT_EQ(stats.fills, 0u);
}

TEST(CacheManager, MultiProcFetchesRemoteData) {
  rts::Runtime rt({4, 1});
  Configuration conf = smallConfig();
  Forest<CentroidData, OctTreeType> forest(rt, conf);
  forest.load(makeParticles(uniformCube(800, 4)));
  forest.decompose();
  forest.build();
  forest.traverse<GravityVisitor>(GravityVisitor{});
  const auto stats = forest.cacheStatsTotal();
  EXPECT_GT(stats.requests_sent, 0u);
  EXPECT_EQ(stats.fills, stats.requests_sent);
  EXPECT_GT(stats.bytes_received, 0u);
  EXPECT_GT(stats.pauses, 0u);
}

TEST(CacheManager, PerThreadModelFetchesMore) {
  // The per-thread ("Sequential") cache duplicates fetches across workers
  // on the same process: strictly more communication volume.
  rts::Runtime rt({2, 3});
  Configuration conf = smallConfig();
  conf.min_partitions = 12;  // several partitions per proc to occupy workers

  auto requests = [&](CacheModel model) {
    conf.cache_model = model;
    Forest<CentroidData, OctTreeType> forest(rt, conf);
    forest.load(makeParticles(clustered(1500, 5, 6, 0.05)));
    forest.decompose();
    forest.build();
    forest.traverse<GravityVisitor>(GravityVisitor{});
    return forest.cacheStatsTotal().requests_sent;
  };
  const auto shared = requests(CacheModel::kWaitFree);
  const auto per_thread = requests(CacheModel::kPerThread);
  EXPECT_GT(per_thread, shared);
}

TEST(CacheManager, PerThreadModelUsesMoreMemory) {
  rts::Runtime rt({2, 3});
  Configuration conf = smallConfig();
  conf.min_partitions = 12;

  auto nodes = [&](CacheModel model) {
    conf.cache_model = model;
    Forest<CentroidData, OctTreeType> forest(rt, conf);
    forest.load(makeParticles(clustered(1500, 5, 6, 0.05)));
    forest.decompose();
    forest.build();
    forest.traverse<GravityVisitor>(GravityVisitor{});
    return forest.cachedNodeCount();
  };
  EXPECT_GT(nodes(CacheModel::kPerThread), nodes(CacheModel::kWaitFree));
}

// Regression (TSan-exercised): cachedNodeCount() iterates blocks_ that
// concurrent cache fills push into under blocks_mutex_; the read used to
// skip the lock, a data race that could walk a reallocating vector. Poll
// the footprint from a separate thread throughout a multi-proc traversal
// (remote fills guaranteed) — under -DPARATREET_SANITIZE=thread the old
// code reports the race, the guarded read is clean.
TEST(CacheManager, CachedNodeCountIsSafeToPollDuringTraversal) {
  rts::Runtime rt({4, 2});
  Configuration conf = smallConfig();
  Forest<CentroidData, OctTreeType> forest(rt, conf);
  forest.load(makeParticles(uniformCube(1200, 77)));
  forest.decompose();
  forest.build();

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> polls{0};
  std::size_t last = 0;
  std::thread poller([&] {
    while (!stop.load(std::memory_order_acquire)) {
      last = forest.cachedNodeCount();
      polls.fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (int i = 0; i < 3; ++i) {
    forest.traverse<GravityVisitor>(GravityVisitor{});
  }
  stop.store(true, std::memory_order_release);
  poller.join();

  EXPECT_GT(polls.load(), 0u);
  // After quiescence the poll matches a fresh read.
  EXPECT_EQ(forest.cachedNodeCount(), forest.cachedNodeCount());
  EXPECT_GT(forest.cachedNodeCount(), 0u);
  (void)last;
}

TEST(CacheManager, UpperTreeAggregatesAllSubtrees) {
  rts::Runtime rt({3, 1});
  Configuration conf = smallConfig();
  Forest<CentroidData, OctTreeType> forest(rt, conf);
  forest.load(makeParticles(uniformCube(700, 6)));
  forest.decompose();
  forest.build();
  for (int p = 0; p < rt.numProcs(); ++p) {
    Node<CentroidData>* root = forest.cache(p).root();
    ASSERT_NE(root, nullptr);
    EXPECT_EQ(root->n_particles, 700);
    EXPECT_NEAR(root->data.sum_mass, 1.0, 1e-9);
  }
}

TEST(CacheManager, LocalNodeResolvesOwnKeys) {
  rts::Runtime rt({2, 1});
  Configuration conf = smallConfig();
  Forest<CentroidData, OctTreeType> forest(rt, conf);
  forest.load(makeParticles(uniformCube(500, 7)));
  forest.decompose();
  forest.build();
  // Every subtree root resolves on its home proc and not elsewhere.
  for (int s = 0; s < forest.numSubtrees(); ++s) {
    auto& st = forest.subtree(s);
    Node<CentroidData>* found = forest.cache(st.home_proc).localNode(st.root->key);
    EXPECT_EQ(found, st.root);
    const int other = (st.home_proc + 1) % rt.numProcs();
    if (other != st.home_proc) {
      EXPECT_EQ(forest.cache(other).localNode(st.root->key), nullptr);
    }
  }
}

int firstLiveChild(Node<CentroidData>* n) {
  for (int c = 0; c < n->n_children; ++c) {
    if (n->child(c) != nullptr && n->child(c)->n_particles > 0) return c;
  }
  return 0;
}

TEST(CacheManager, LocalNodeResolvesDeepKeys) {
  rts::Runtime rt({2, 1});
  Configuration conf = smallConfig();
  Forest<CentroidData, OctTreeType> forest(rt, conf);
  forest.load(makeParticles(uniformCube(600, 8)));
  forest.decompose();
  forest.build();
  // Pick a deep node of subtree 0 and resolve it by key.
  auto& st = forest.subtree(0);
  Node<CentroidData>* deep = st.root;
  while (!deep->leaf()) deep = deep->child(firstLiveChild(deep));
  Node<CentroidData>* found = forest.cache(st.home_proc).localNode(deep->key);
  EXPECT_EQ(found, deep);
}

TEST(Serialization, RegionRoundTrip) {
  // Build a small local tree, serialize a region, and check the records.
  const OrientedBox universe{Vec3(0), Vec3(1)};
  auto ps = makeParticles(uniformCube(200, 9));
  assignKeys(ps, universe);
  NodeArena<CentroidData> arena;
  BuildOptions opts;
  opts.bucket_size = 8;
  Node<CentroidData>* root = buildTree<CentroidData>(
      OctTreeType{}, arena, std::span<Particle>(ps), universe, opts);

  const auto block = serializeRegion(root, 2);
  ASSERT_FALSE(block.records.empty());
  EXPECT_EQ(block.requested, root->key);
  EXPECT_EQ(block.records[0].key, root->key);
  EXPECT_EQ(block.records[0].parent_index, -1);
  // Every shipped leaf's particles are present.
  std::size_t leaf_particles = 0;
  for (const auto& rec : block.records) {
    if (rec.type == NodeType::kLeaf) {
      EXPECT_GE(rec.particles_offset, 0);
      leaf_particles += static_cast<std::size_t>(rec.particles_count);
    }
    if (rec.parent_index >= 0) {
      EXPECT_LT(rec.parent_index, static_cast<std::int32_t>(block.records.size()));
    }
  }
  EXPECT_EQ(leaf_particles, block.particles.size());
  EXPECT_GT(block.byteSize(), sizeof(Key));
}

TEST(Serialization, FetchDepthBoundsRecords) {
  const OrientedBox universe{Vec3(0), Vec3(1)};
  auto ps = makeParticles(uniformCube(500, 10));
  assignKeys(ps, universe);
  NodeArena<CentroidData> arena;
  BuildOptions opts;
  opts.bucket_size = 4;
  Node<CentroidData>* root = buildTree<CentroidData>(
      OctTreeType{}, arena, std::span<Particle>(ps), universe, opts);
  const auto shallow = serializeRegion(root, 1);
  const auto deep = serializeRegion(root, 4);
  EXPECT_LT(shallow.records.size(), deep.records.size());
  // Shallow frontier nodes are marked unshipped.
  bool has_frontier = false;
  for (const auto& rec : shallow.records) {
    if (rec.type == NodeType::kInternal && !rec.children_shipped) {
      has_frontier = true;
    }
  }
  EXPECT_TRUE(has_frontier);
}

TEST(Configuration, DerivedValues) {
  Configuration conf;
  conf.tree_type = TreeType::eOct;
  EXPECT_EQ(conf.bitsPerLevel(), 3);
  EXPECT_EQ(conf.subtreeDecomp(), DecompType::eOct);
  conf.tree_type = TreeType::eKd;
  EXPECT_EQ(conf.bitsPerLevel(), 1);
  EXPECT_EQ(conf.subtreeDecomp(), DecompType::eKd);
  conf.tree_type = TreeType::eLongest;
  EXPECT_EQ(conf.subtreeDecomp(), DecompType::eLongest);
}

TEST(Configuration, ToStringNames) {
  EXPECT_EQ(toString(TreeType::eOct), "oct");
  EXPECT_EQ(toString(CacheModel::kWaitFree), "WaitFree");
  EXPECT_EQ(toString(CacheModel::kXWrite), "XWrite");
  EXPECT_EQ(toString(CacheModel::kPerThread), "Sequential");
  EXPECT_EQ(toString(CacheModel::kSingleInserter), "SingleInserter");
}

}  // namespace
}  // namespace paratreet
