#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "apps/gravity/centroid_data.hpp"
#include "tree/builder.hpp"
#include "tree/validate.hpp"
#include "util/distributions.hpp"

namespace paratreet {
namespace {

/// Minimal Data used for structural tests.
struct MassData {
  double mass{0};
  int count{0};
  MassData() = default;
  MassData(const Particle* p, int n) {
    for (int i = 0; i < n; ++i) mass += p[i].mass;
    count = n;
  }
  MassData& operator+=(const MassData& o) {
    mass += o.mass;
    count += o.count;
    return *this;
  }
};

std::vector<Particle> makeTestParticles(std::size_t n, std::uint64_t seed,
                                        const OrientedBox& universe) {
  auto ic = uniformCube(n, seed, universe);
  std::vector<Particle> ps(n);
  for (std::size_t i = 0; i < n; ++i) {
    ps[i].position = ic.positions[i];
    ps[i].mass = ic.masses[i];
    ps[i].order = static_cast<std::int32_t>(i);
  }
  assignKeys(ps, universe);
  return ps;
}

enum class TT { kOct, kKd, kLongest };

class TreeBuildTest : public ::testing::TestWithParam<std::tuple<TT, int, int>> {
 protected:
  template <typename TreeT>
  void runStructural(const TreeT& tree_type, int bucket, int n) {
    const OrientedBox universe{Vec3(0), Vec3(1)};
    auto ps = makeTestParticles(static_cast<std::size_t>(n), 17, universe);
    NodeArena<MassData> arena;
    BuildOptions opts;
    opts.bucket_size = bucket;
    Node<MassData>* root =
        buildTree<MassData>(tree_type, arena, std::span<Particle>(ps), universe, opts);
    ASSERT_NE(root, nullptr);
    EXPECT_EQ(validateTree(root), "");
    EXPECT_EQ(root->n_particles, n);
    EXPECT_NEAR(root->data.mass, n > 0 ? 1.0 : 0.0, 1e-9);
    EXPECT_EQ(root->data.count, n);
    // Every leaf respects the bucket bound.
    forEachLeaf(root, [&](Node<MassData>* leaf) {
      EXPECT_LE(leaf->n_particles, bucket);
    });
    // Leaves partition the particle set.
    int total = 0;
    forEachLeaf(root, [&](Node<MassData>* leaf) { total += leaf->n_particles; });
    EXPECT_EQ(total, n);
  }

  void run() {
    const auto [tt, bucket, n] = GetParam();
    switch (tt) {
      case TT::kOct: runStructural(OctTreeType{}, bucket, n); break;
      case TT::kKd: runStructural(KdTreeType{}, bucket, n); break;
      case TT::kLongest: runStructural(LongestDimTreeType{}, bucket, n); break;
    }
  }
};

TEST_P(TreeBuildTest, StructuralInvariants) { run(); }

INSTANTIATE_TEST_SUITE_P(
    AllTreeTypes, TreeBuildTest,
    ::testing::Combine(::testing::Values(TT::kOct, TT::kKd, TT::kLongest),
                       ::testing::Values(1, 4, 12, 64),
                       ::testing::Values(0, 1, 100, 1500)),
    [](const auto& info) {
      const TT tt = std::get<0>(info.param);
      const char* name = tt == TT::kOct ? "Oct" : tt == TT::kKd ? "Kd" : "Longest";
      return std::string(name) + "_b" + std::to_string(std::get<1>(info.param)) +
             "_n" + std::to_string(std::get<2>(info.param));
    });

TEST(TreeBuild, KdTreeIsBalanced) {
  const OrientedBox universe{Vec3(0), Vec3(1)};
  auto ps = makeTestParticles(1024, 3, universe);
  NodeArena<MassData> arena;
  BuildOptions opts;
  opts.bucket_size = 1;
  Node<MassData>* root = buildTree<MassData>(KdTreeType{}, arena,
                                             std::span<Particle>(ps), universe, opts);
  // 1024 particles, bucket 1: a balanced binary tree has depth exactly 10.
  int max_depth = 0, min_leaf_depth = 1000;
  forEachLeaf(root, [&](Node<MassData>* leaf) {
    max_depth = std::max(max_depth, static_cast<int>(leaf->depth));
    min_leaf_depth = std::min(min_leaf_depth, static_cast<int>(leaf->depth));
  });
  EXPECT_EQ(max_depth, 10);
  EXPECT_EQ(min_leaf_depth, 10);
}

TEST(TreeBuild, OctreeImbalancedOnClusteredInput) {
  // A clustered distribution produces a deeper octree than a k-d tree.
  const OrientedBox universe{Vec3(-1), Vec3(1)};
  auto ic = clustered(2000, 5, 4, 0.001);
  std::vector<Particle> ps(ic.size());
  for (std::size_t i = 0; i < ic.size(); ++i) {
    ps[i].position = ic.positions[i];
    ps[i].mass = ic.masses[i];
    ps[i].order = static_cast<std::int32_t>(i);
  }
  OrientedBox u;
  for (const auto& p : ps) u.grow(p.position);
  assignKeys(ps, u);

  auto max_leaf_depth = [&](auto tree_type) {
    auto copy = ps;
    NodeArena<MassData> arena;
    BuildOptions opts;
    opts.bucket_size = 8;
    Node<MassData>* root = buildTree<MassData>(tree_type, arena,
                                               std::span<Particle>(copy), u, opts);
    int depth = 0;
    forEachLeaf(root, [&](Node<MassData>* leaf) {
      depth = std::max(depth, static_cast<int>(leaf->depth));
    });
    return depth;
  };
  // Octree leaf depth is driven by clustering; kd depth by count only.
  EXPECT_GT(max_leaf_depth(OctTreeType{}), max_leaf_depth(KdTreeType{}));
}

TEST(TreeBuild, LongestDimSplitsThinDiskInPlane) {
  // For a flat disk the first several longest-dimension splits must never
  // split z, while the octree always does.
  const OrientedBox universe{Vec3(-4, -4, -0.01), Vec3(4, 4, 0.01)};
  auto ps = makeTestParticles(2048, 7, universe);
  NodeArena<MassData> arena;
  BuildOptions opts;
  opts.bucket_size = 32;
  Node<MassData>* root = buildTree<MassData>(LongestDimTreeType{}, arena,
                                             std::span<Particle>(ps), universe, opts);
  // Walk the top 4 levels: every internal split keeps the z extent.
  std::function<void(Node<MassData>*, int)> walk = [&](Node<MassData>* n, int d) {
    if (d >= 4 || n->leaf()) return;
    for (int c = 0; c < n->n_children; ++c) {
      Node<MassData>* child = n->child(c);
      EXPECT_NEAR(child->box.size().z, n->box.size().z, 1e-12);
      walk(child, d + 1);
    }
  };
  walk(root, 0);
}

TEST(TreeBuild, DuplicatePositionsHitDepthLimit) {
  // All particles at one point: the octree cannot separate them and must
  // force a leaf at max depth instead of recursing forever.
  const OrientedBox universe{Vec3(0), Vec3(1)};
  std::vector<Particle> ps(50);
  for (std::size_t i = 0; i < ps.size(); ++i) {
    ps[i].position = Vec3(0.3, 0.3, 0.3);
    ps[i].mass = 1.0;
    ps[i].order = static_cast<std::int32_t>(i);
  }
  assignKeys(ps, universe);
  NodeArena<MassData> arena;
  BuildOptions opts;
  opts.bucket_size = 4;
  Node<MassData>* root = buildTree<MassData>(OctTreeType{}, arena,
                                             std::span<Particle>(ps), universe, opts);
  EXPECT_EQ(validateTree(root), "");
  EXPECT_EQ(root->n_particles, 50);
  int leaf_count = 0;
  forEachLeaf(root, [&](Node<MassData>* leaf) {
    if (leaf->type == NodeType::kLeaf) ++leaf_count;
  });
  EXPECT_EQ(leaf_count, 1);  // one over-full leaf at the depth limit
}

TEST(TreeBuild, CentroidDataAccumulation) {
  const OrientedBox universe{Vec3(0), Vec3(1)};
  auto ps = makeTestParticles(700, 21, universe);
  // Give particles varied masses.
  for (auto& p : ps) p.mass = 0.5 + 1.5 * (static_cast<double>(p.order % 7) / 7.0);
  NodeArena<CentroidData> arena;
  Node<CentroidData>* root = buildTree<CentroidData>(
      OctTreeType{}, arena, std::span<Particle>(ps), universe, {});
  // Root data equals the direct fold over all particles.
  CentroidData direct(ps.data(), static_cast<int>(ps.size()));
  EXPECT_NEAR(root->data.sum_mass, direct.sum_mass, 1e-9);
  EXPECT_NEAR(root->data.centroid().x, direct.centroid().x, 1e-9);
  EXPECT_NEAR(root->data.centroid().y, direct.centroid().y, 1e-9);
  EXPECT_NEAR(root->data.centroid().z, direct.centroid().z, 1e-9);
  const auto qa = root->data.quadrupole();
  const auto qb = direct.quadrupole();
  EXPECT_NEAR(qa.xx, qb.xx, 1e-7);
  EXPECT_NEAR(qa.xy, qb.xy, 1e-7);
  EXPECT_NEAR(qa.zz, qb.zz, 1e-7);
  // Traceless by construction.
  EXPECT_NEAR(qa.trace(), 0.0, 1e-9);
}

TEST(TreeBuild, NodeCountsReasonable) {
  const OrientedBox universe{Vec3(0), Vec3(1)};
  auto ps = makeTestParticles(1000, 2, universe);
  NodeArena<MassData> arena;
  BuildOptions opts;
  opts.bucket_size = 10;
  Node<MassData>* root = buildTree<MassData>(OctTreeType{}, arena,
                                             std::span<Particle>(ps), universe, opts);
  const std::size_t nodes = countNodes(root);
  EXPECT_EQ(nodes, arena.size());
  EXPECT_GT(nodes, 100u);   // at least n/bucket leaves
  EXPECT_LT(nodes, 4000u);  // not absurdly many
}

TEST(SpatialNode, ReadOnlySourceSemantics) {
  Particle p;
  p.position = Vec3(1, 2, 3);
  MassData data(&p, 1);
  OrientedBox box{Vec3(0), Vec3(4)};
  SpatialNode<MassData> node(data, box, keys::kRoot, 1, &p);
  const SpatialNode<MassData>& source = node;
  // Const view exposes read access only.
  EXPECT_EQ(source.particle(0).position, Vec3(1, 2, 3));
  // Mutable view can deposit results.
  node.applyAcceleration(0, Vec3(1, 0, 0));
  node.applyPotential(0, -2.0);
  EXPECT_EQ(p.acceleration, Vec3(1, 0, 0));
  EXPECT_DOUBLE_EQ(p.potential, -2.0);
}

}  // namespace
}  // namespace paratreet
