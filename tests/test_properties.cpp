// Randomized property tests across distributions, seeds and runtime
// schedules: the invariants in DESIGN.md section 6, checked on inputs the
// targeted unit tests don't enumerate.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "apps/collision/collision.hpp"
#include "apps/gravity/gravity.hpp"
#include "apps/sph/knn.hpp"
#include "apps/sph/sph.hpp"
#include "core/forest.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace paratreet {
namespace {

enum class Dist { kUniform, kPlummer, kClustered, kDisk };

InitialConditions make(Dist d, std::size_t n, std::uint64_t seed) {
  switch (d) {
    case Dist::kUniform: return uniformCube(n, seed);
    case Dist::kPlummer: return plummer(n, seed, 0.15);
    case Dist::kClustered: return clustered(n, seed, 5, 0.02);
    case Dist::kDisk: return planetesimalDisk(n, seed);
  }
  return {};
}

std::string distName(Dist d) {
  switch (d) {
    case Dist::kUniform: return "uniform";
    case Dist::kPlummer: return "plummer";
    case Dist::kClustered: return "clustered";
    case Dist::kDisk: return "disk";
  }
  return "?";
}

class ForestPropertyTest
    : public ::testing::TestWithParam<std::tuple<Dist, int>> {};

TEST_P(ForestPropertyTest, StructureAndConservation) {
  const auto [dist, seed] = GetParam();
  rts::Runtime rt({3, 2});
  Configuration conf;
  conf.min_partitions = 7;
  conf.min_subtrees = 5;
  conf.bucket_size = 11;
  Forest<CentroidData, OctTreeType> forest(rt, conf);
  const auto ic = make(dist, 600, static_cast<std::uint64_t>(seed));
  const std::size_t n = ic.size();
  forest.load(makeParticles(ic));
  forest.decompose();
  forest.build();
  // Structural invariants hold for every distribution & seed.
  EXPECT_EQ(forest.validate(), "");
  // Conservation: every particle exactly once in partitions & subtrees.
  std::map<std::int32_t, int> seen;
  for (int i = 0; i < forest.numPartitions(); ++i) {
    for (const auto& b : forest.partition(i).buckets) {
      for (const auto& p : b.particles) seen[p.order]++;
    }
  }
  EXPECT_EQ(seen.size(), n);
  for (const auto& [o, c] : seen) EXPECT_EQ(c, 1);
  // Mass conservation through Data accumulation.
  double subtree_mass = 0;
  for (int s = 0; s < forest.numSubtrees(); ++s) {
    subtree_mass += forest.subtree(s).root->data.sum_mass;
  }
  double direct = 0;
  for (double m : ic.masses) direct += m;
  EXPECT_NEAR(subtree_mass, direct, 1e-9 * (std::abs(direct) + 1));
  // Gravity produces finite results everywhere.
  GravityVisitor v;
  v.params.softening = 1e-4;
  forest.traverse<GravityVisitor>(v);
  for (const auto& p : forest.collect()) {
    EXPECT_TRUE(std::isfinite(p.acceleration.x));
    EXPECT_TRUE(std::isfinite(p.acceleration.y));
    EXPECT_TRUE(std::isfinite(p.acceleration.z));
    EXPECT_TRUE(std::isfinite(p.potential));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ForestPropertyTest,
    ::testing::Combine(::testing::Values(Dist::kUniform, Dist::kPlummer,
                                         Dist::kClustered, Dist::kDisk),
                       ::testing::Values(1, 2, 3)),
    [](const auto& info) {
      return distName(std::get<0>(info.param)) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

class DelayedCommTest : public ::testing::TestWithParam<int> {};

TEST_P(DelayedCommTest, CacheModelsAgreeUnderMessageDelay) {
  // Delayed delivery reorders pause/resume schedules aggressively; every
  // cache model must still produce the same physics.
  const int seed = GetParam();
  rts::Runtime::Config rc;
  rc.n_procs = 3;
  rc.workers_per_proc = 2;
  rc.comm.latency_us = 300.0;  // big enough to force real pausing
  rts::Runtime rt(rc);

  auto run = [&](CacheModel model) {
    Configuration conf;
    conf.min_partitions = 8;
    conf.min_subtrees = 6;
    conf.bucket_size = 8;
    conf.cache_model = model;
    Forest<CentroidData, OctTreeType> forest(rt, conf);
    forest.load(makeParticles(clustered(500, static_cast<std::uint64_t>(seed),
                                        4, 0.03)));
    forest.decompose();
    forest.build();
    GravityVisitor v;
    v.params.softening = 1e-3;
    forest.traverse<GravityVisitor>(v);
    return forest.collect();
  };
  const auto reference = run(CacheModel::kWaitFree);
  for (auto model : {CacheModel::kXWrite, CacheModel::kPerThread,
                     CacheModel::kSingleInserter}) {
    const auto result = run(model);
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_LT(
          (reference[i].acceleration - result[i].acceleration).length(),
          1e-9 * (reference[i].acceleration.length() + 1e-12))
          << toString(model) << " particle " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DelayedCommTest, ::testing::Values(11, 12),
                         [](const auto& info) {
                           return "s" + std::to_string(info.param);
                         });

TEST(KnnProperty, RandomQueriesAcrossDistributions) {
  rts::Runtime rt({2, 2});
  for (Dist dist : {Dist::kUniform, Dist::kClustered}) {
    Configuration conf;
    conf.min_partitions = 6;
    conf.min_subtrees = 4;
    conf.bucket_size = 12;
    Forest<SphData, OctTreeType> forest(rt, conf);
    auto particles = makeParticles(make(dist, 300, 101));
    const auto reference = particles;
    forest.load(std::move(particles));
    forest.decompose();
    forest.build();
    const int k = 6;
    NeighborStore store(reference.size(), k);
    forest.forEachParticle([](Particle& p) { p.ball2 = kInfiniteBall; });
    forest.traverseUpAndDown(KNearestVisitor<SphData>{&store});

    Rng rng(55);
    for (int q = 0; q < 12; ++q) {
      const auto order =
          static_cast<std::int32_t>(rng.below(reference.size()));
      // Brute-force kth distance.
      std::vector<double> d2;
      d2.reserve(reference.size());
      for (const auto& p : reference) {
        d2.push_back(distanceSquared(
            p.position, reference[static_cast<std::size_t>(order)].position));
      }
      std::nth_element(d2.begin(), d2.begin() + k - 1, d2.end());
      auto heap = store.neighbors(order);
      ASSERT_EQ(heap.size(), static_cast<std::size_t>(k));
      double max_d2 = 0;
      for (const auto& nb : heap) max_d2 = std::max(max_d2, nb.d2);
      EXPECT_NEAR(max_d2, d2[static_cast<std::size_t>(k - 1)], 1e-12)
          << distName(dist) << " order " << order;
    }
  }
}

TEST(CollisionProperty, TraversalFindsExactlyBruteForcePairs) {
  // The set of (earliest-partner) collision records from the traversal
  // must match a brute-force sweep over all pairs.
  rts::Runtime rt({2, 2});
  Configuration conf;
  conf.min_partitions = 6;
  conf.min_subtrees = 4;
  conf.bucket_size = 8;
  Forest<CentroidData, OctTreeType> forest(rt, conf);

  // A swarm with significant velocities and fat radii: many candidates.
  InitialConditions ic;
  Rng rng(77);
  for (int i = 0; i < 300; ++i) {
    ic.positions.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
    ic.velocities.push_back(
        {rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)});
    ic.masses.push_back(1e-6);
    ic.radii.push_back(0.004);
  }
  const double dt = 0.05;
  auto reference = makeParticles(ic);
  forest.load(makeParticles(ic));
  forest.decompose();
  forest.build();
  forest.traverse<CollisionVisitor>(CollisionVisitor{dt});
  const auto out = forest.collect();

  // Brute force: earliest partner per particle.
  std::vector<std::int32_t> partner(reference.size(), -1);
  std::vector<double> when(reference.size(), 0.0);
  for (std::size_t i = 0; i < reference.size(); ++i) {
    for (std::size_t j = 0; j < reference.size(); ++j) {
      if (i == j) continue;
      double t;
      if (CollisionVisitor::sweptContact(reference[i], reference[j], dt, t)) {
        if (partner[i] < 0 || t < when[i]) {
          partner[i] = reference[j].order;
          when[i] = t;
        }
      }
    }
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    const auto idx = static_cast<std::size_t>(out[i].order);
    EXPECT_EQ(out[i].collision_partner, partner[idx]) << "order " << idx;
    if (partner[idx] >= 0) {
      EXPECT_NEAR(out[i].collision_time, when[idx], 1e-12);
    }
  }
}

TEST(GravityProperty, EnergyErrorShrinksWithTheta) {
  // Property over the θ knob: smaller θ → smaller force error, strictly
  // ordered over a decade of θ values.
  rts::Runtime rt({2, 1});
  Configuration conf;
  conf.min_partitions = 4;
  conf.min_subtrees = 4;
  conf.bucket_size = 12;
  auto particles = makeParticles(clustered(400, 31, 3, 0.05));
  auto reference = particles;
  GravityParams direct_params;
  direct_params.softening = 1e-3;
  directForces(std::span<Particle>(reference), direct_params);

  double prev_err = 1e300;
  for (double theta : {1.2, 0.7, 0.35, 0.15}) {
    Forest<CentroidData, OctTreeType> forest(rt, conf);
    forest.load(particles);
    forest.decompose();
    forest.build();
    GravityVisitor v;
    v.params.theta = theta;
    v.params.softening = 1e-3;
    forest.traverse<GravityVisitor>(v);
    const auto out = forest.collect();
    RunningStats rel;
    for (std::size_t i = 0; i < out.size(); ++i) {
      const double mag = reference[i].acceleration.length();
      if (mag < 1e-12) continue;
      rel.add((out[i].acceleration - reference[i].acceleration).length() / mag);
    }
    EXPECT_LT(rel.mean(), prev_err) << "theta " << theta;
    prev_err = rel.mean();
  }
  EXPECT_LT(prev_err, 1e-4);  // theta=0.15 with quadrupole is very accurate
}

TEST(FlushProperty, ManyIterationsPreserveParticleIdentity) {
  rts::Runtime rt({2, 2});
  Configuration conf;
  conf.min_partitions = 6;
  conf.min_subtrees = 4;
  conf.bucket_size = 10;
  Forest<CentroidData, OctTreeType> forest(rt, conf);
  auto ic = uniformCube(300, 41);
  forest.load(makeParticles(ic));
  forest.decompose();
  for (int iter = 0; iter < 5; ++iter) {
    forest.build();
    forest.traverse<GravityVisitor>(GravityVisitor{});
    // Drift slightly: exercises re-keying and re-decomposition.
    forest.forEachParticle([](Particle& p) {
      p.position += 1e-3 * p.acceleration;
    });
    forest.flush();
  }
  forest.build();
  const auto out = forest.collect();
  ASSERT_EQ(out.size(), 300u);
  std::map<std::int32_t, int> orders;
  for (const auto& p : out) orders[p.order]++;
  EXPECT_EQ(orders.size(), 300u);
  // Masses are immutable through any number of flushes.
  for (const auto& p : out) {
    EXPECT_DOUBLE_EQ(p.mass, ic.masses[static_cast<std::size_t>(p.order)]);
  }
}

}  // namespace
}  // namespace paratreet
