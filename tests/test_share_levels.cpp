#include <gtest/gtest.h>

#include "apps/gravity/gravity.hpp"
#include "core/driver.hpp"
#include "core/forest.hpp"

namespace paratreet {
namespace {

Configuration baseConfig(int share_levels) {
  Configuration conf;
  conf.min_partitions = 8;
  conf.min_subtrees = 6;
  conf.bucket_size = 8;
  conf.share_levels = share_levels;
  return conf;
}

std::vector<Particle> runWithShare(rts::Runtime& rt, int share_levels,
                                   typename CacheManager<CentroidData>::StatsSnapshot* stats) {
  Forest<CentroidData, OctTreeType> forest(rt, baseConfig(share_levels));
  forest.load(makeParticles(uniformCube(700, 19)));
  forest.decompose();
  forest.build();
  forest.traverse<GravityVisitor>(GravityVisitor{});
  if (stats != nullptr) *stats = forest.cacheStatsTotal();
  return forest.collect();
}

TEST(ShareLevels, ResultsIdenticalWithAndWithoutSharing) {
  rts::Runtime rt({3, 2});
  const auto without = runWithShare(rt, 0, nullptr);
  const auto with = runWithShare(rt, 3, nullptr);
  ASSERT_EQ(without.size(), with.size());
  for (std::size_t i = 0; i < without.size(); ++i) {
    EXPECT_LT((without[i].acceleration - with[i].acceleration).length(),
              1e-9 * (without[i].acceleration.length() + 1e-12));
  }
}

TEST(ShareLevels, SharingReducesTraversalFetches) {
  rts::Runtime rt({4, 1});
  typename CacheManager<CentroidData>::StatsSnapshot none{}, shared{};
  runWithShare(rt, 0, &none);
  runWithShare(rt, 4, &shared);
  EXPECT_GT(none.requests_sent, shared.requests_sent);
  EXPECT_GT(shared.preloaded_nodes, 0u);
  EXPECT_EQ(none.preloaded_nodes, 0u);
}

TEST(ShareLevels, DeepSharingEliminatesMostFetches) {
  rts::Runtime rt({3, 1});
  typename CacheManager<CentroidData>::StatsSnapshot deep{};
  runWithShare(rt, 30, &deep);  // deeper than any subtree: everything shared
  EXPECT_EQ(deep.requests_sent, 0u);
}

TEST(ShareLevels, SingleProcIsNoop) {
  rts::Runtime rt({1, 2});
  typename CacheManager<CentroidData>::StatsSnapshot stats{};
  runWithShare(rt, 3, &stats);
  EXPECT_EQ(stats.preloaded_nodes, 0u);  // nothing is remote
}

/// Driver with periodic load balancing (Configuration::lb_period).
class LbDriver : public Driver<CentroidData, OctTreeType> {
 public:
  LbScheme scheme = LbScheme::kSfc;
  void configure(Configuration& conf) override {
    conf.num_iterations = 3;
    conf.min_partitions = 12;
    conf.min_subtrees = 4;
    conf.bucket_size = 8;
    conf.lb_period = 1;
    conf.lb_scheme = scheme;
  }
  void traversal(int) override { startDown<GravityVisitor>(); }
};

TEST(DriverLb, PeriodicRebalanceKeepsResultsCorrect) {
  rts::Runtime rt({3, 2});
  LbDriver app;
  auto particles = makeParticles(clustered(600, 23, 3, 0.02));
  app.run(rt, particles);
  EXPECT_EQ(app.forest().particleCount(), 600u);
  // Forces from the final (rebalanced) iteration match a fresh
  // non-balanced run on the same static particles.
  Configuration conf;
  conf.min_partitions = 12;
  conf.min_subtrees = 4;
  conf.bucket_size = 8;
  Forest<CentroidData, OctTreeType> reference(rt, conf);
  reference.load(std::move(particles));
  reference.decompose();
  reference.build();
  reference.traverse<GravityVisitor>(GravityVisitor{});
  const auto expect = reference.collect();
  const auto got = app.forest().collect();
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_LT((got[i].acceleration - expect[i].acceleration).length(),
              1e-9 * (expect[i].acceleration.length() + 1e-12));
  }
}

TEST(DriverLb, GreedySchemeAlsoRuns) {
  rts::Runtime rt({2, 2});
  LbDriver app;
  app.scheme = LbScheme::kGreedy;
  app.run(rt, makeParticles(uniformCube(400, 29)));
  EXPECT_EQ(app.forest().particleCount(), 400u);
}

}  // namespace
}  // namespace paratreet
