// Liveness & integrity suite: the heartbeat hang detector, the
// escalating recovery budgets, and the end-to-end checksums.
//
// A wedged rank — alive but silent (SIGSTOP over TCP, parked scheduling
// in-process) — never EOFs, so only missed heartbeats can see it; once
// the miss threshold trips the wedge is promoted to a crash and recovery
// runs the unchanged checkpoint path, bitwise under kRestart. Seeded
// frame corruption must be caught by the frame CRC and healed by
// retransmission without changing a bit of physics; a corrupted stored
// checkpoint copy must be detected by its stamped checksum and recovery
// must fall back to the buddy copy or an older sealed generation. The
// RecoveryPolicy budgets turn a crash-looping rank into an escalation
// (restart -> shrink) and an exhausted global budget into a loud throw.
//
// The gravity setup reuses the bitwise-reproducible kd config of
// test_chaos.cpp / test_transport.cpp: two Subtrees and two Partitions
// on 2 procs x 1 worker, fetch_depth shipping a whole remote subtree.
//
// The TCP tests fork rank processes, which TSan cannot follow; they
// GTEST_SKIP under TSan like the rest of the TCP coverage.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "apps/gravity/gravity.hpp"
#include "core/driver.hpp"
#include "core/serialization.hpp"
#include "observability/report.hpp"
#include "rts/checkpoint.hpp"
#include "rts/fault.hpp"
#include "rts/runtime.hpp"
#include "rts/transport.hpp"

#if defined(__SANITIZE_THREAD__)
#define PARATREET_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PARATREET_TSAN 1
#endif
#endif
#ifndef PARATREET_TSAN
#define PARATREET_TSAN 0
#endif

#define SKIP_UNDER_TSAN()                                                \
  do {                                                                   \
    if (PARATREET_TSAN) {                                                \
      GTEST_SKIP() << "tcp transport forks rank processes, which TSan "  \
                      "cannot follow; the CI TSan job runs inproc";      \
    }                                                                    \
  } while (0)

namespace paratreet {
namespace {

// --- fault model -----------------------------------------------------------

TEST(FaultModel, WedgeKnobsAreSeededAndValidated) {
  rts::FaultConfig f;
  EXPECT_EQ(f.validate(), "");
  EXPECT_EQ(f.wedge_step, -1);

  // Seeded victim/budget picks are pure functions of the seed.
  f.seed = 99;
  EXPECT_EQ(f.wedgeVictim(4), f.wedgeVictim(4));
  EXPECT_GE(f.wedgeVictim(4), 0);
  EXPECT_LT(f.wedgeVictim(4), 4);
  EXPECT_GE(f.wedgeTaskBudget(), 1);
  f.wedge_rank = 7;
  EXPECT_EQ(f.wedgeVictim(4), 3);  // pinned, wrapped to the rank count
  f.wedge_after_tasks = 5;
  EXPECT_EQ(f.wedgeTaskBudget(), 5);

  f = {};
  f.wedge_step = -2;
  EXPECT_NE(f.validate().find("wedge_step"), std::string::npos);
  f = {};
  f.wedge_rank = -2;
  EXPECT_NE(f.validate().find("wedge_rank"), std::string::npos);
  f = {};
  f.corrupt_p = 1.5;
  EXPECT_NE(f.validate().find("corrupt_p"), std::string::npos);
}

TEST(FaultModel, CorruptionCountsAsAMessageFault) {
  // corrupt_p alone must arm the reliable layer: a discarded corrupt copy
  // is healed by retransmission, which only exists when RL is active.
  rts::FaultConfig f;
  EXPECT_FALSE(f.anyMessageFaults());
  f.corrupt_p = 0.1;
  EXPECT_TRUE(f.anyMessageFaults());
}

TEST(FaultModel, FrameCorruptionDecisionsAreDeterministic) {
  rts::FaultConfig cfg;
  cfg.enabled = true;
  cfg.seed = 1234;
  cfg.corrupt_p = 0.2;
  rts::FaultInjector a(cfg);
  rts::FaultInjector b(cfg);
  int fired = 0;
  for (std::uint64_t seq = 0; seq < 400; ++seq) {
    const bool hit = a.onFrameCorrupt(seq);
    EXPECT_EQ(hit, b.onFrameCorrupt(seq)) << "seq " << seq;
    if (hit) ++fired;
    EXPECT_LT(a.corruptBitIndex(seq, 0, 512), 512u);
    EXPECT_EQ(a.corruptBitIndex(seq, 0, 512), b.corruptBitIndex(seq, 0, 512));
  }
  // ~20% of 400 frames; generous bounds so the test never flakes.
  EXPECT_GT(fired, 30);
  EXPECT_LT(fired, 170);
  EXPECT_EQ(a.count(rts::FaultKind::kCorrupt),
            static_cast<std::uint64_t>(fired));
}

// --- configuration plumbing ------------------------------------------------

TEST(RecoveryPolicySuite, ValidateNamesTheOffendingField) {
  RecoveryPolicy p;
  EXPECT_EQ(p.validate(), "");
  p.max_restarts_per_rank = -1;
  EXPECT_NE(p.validate().find("max_restarts_per_rank"), std::string::npos);
  p = {};
  p.restart_backoff_ms = -0.5;
  EXPECT_NE(p.validate().find("restart_backoff_ms"), std::string::npos);
  p = {};
  p.max_recoveries = -2;
  EXPECT_NE(p.validate().find("max_recoveries"), std::string::npos);
  p = {};
  p.max_recoveries = -1;  // unbounded is legal
  EXPECT_EQ(p.validate(), "");
}

TEST(RecoveryPolicySuite, ConfigurationValidateChainsRecoveryErrors) {
  Configuration conf;
  EXPECT_EQ(conf.validate(), "");
  conf.recovery.max_restarts_per_rank = -3;
  const std::string err = conf.validate();
  EXPECT_NE(err.find("Configuration.recovery."), std::string::npos) << err;
  EXPECT_NE(err.find("max_restarts_per_rank"), std::string::npos) << err;
}

TEST(HeartbeatConfig, ValidatesAndSizesTheWindow) {
  rts::TransportConfig t;
  EXPECT_EQ(t.validate(), "");
  EXPECT_EQ(t.heartbeat_interval_ms, 0.0);  // off by default

  t.heartbeat_interval_ms = 50.0;
  t.miss_threshold = 3;
  EXPECT_EQ(t.validate(), "");
  EXPECT_DOUBLE_EQ(t.heartbeatWindowMs(), 200.0);

  t.heartbeat_interval_ms = -1.0;
  EXPECT_NE(t.validate().find("heartbeat_interval_ms"), std::string::npos);
  t = {};
  t.miss_threshold = 0;
  EXPECT_NE(t.validate().find("miss_threshold"), std::string::npos);
}

// --- checkpoint integrity --------------------------------------------------

TEST(ChunkIntegrity, DeserializeRejectsBitFlips) {
  std::vector<Particle> particles = makeParticles(uniformCube(32, 5));
  auto bytes = serializeCheckpointChunk(3, 1, particles);
  // Intact chunk round-trips.
  const auto decoded = deserializeCheckpointChunk(bytes);
  EXPECT_EQ(decoded.first.step, 3);
  EXPECT_EQ(decoded.second.size(), particles.size());

  // One flipped bit deep in particle state fails the checksum loudly.
  auto corrupt = bytes;
  corrupt[corrupt.size() / 2] ^= std::byte{0x10};
  try {
    deserializeCheckpointChunk(corrupt);
    FAIL() << "bit-flipped chunk decoded";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum mismatch"),
              std::string::npos)
        << e.what();
  }
}

std::vector<std::byte> tag(int rank, int step) {
  return {static_cast<std::byte>(0xA0 + rank),
          static_cast<std::byte>(0xB0 + step),
          static_cast<std::byte>(rank * 16 + step)};
}

TEST(ChunkIntegrity, CorruptedCopyFallsBackToBuddy) {
  rts::Runtime rt({3, 1});
  rts::CheckpointStore store;
  store.init(&rt, nullptr);
  for (int r = 0; r < 3; ++r) store.commit(r, 0, tag(r, 0));
  rt.drain();
  store.seal(0);

  // Bit rot in rank 1's own copy: the generation stays restorable via the
  // intact buddy copy, and assemble() returns the pristine bytes.
  ASSERT_TRUE(store.corruptStoredChunk(1, 1, 0));
  EXPECT_EQ(store.latestRestorableStep(), 0);
  EXPECT_EQ(store.assemble(0)[1], tag(1, 0));

  // Rot in the buddy copy too: no intact copy of rank 1's chunk survives.
  ASSERT_TRUE(store.corruptStoredChunk(2, 1, 0));
  EXPECT_EQ(store.latestRestorableStep(), rts::CheckpointStore::kNoStep);
  try {
    store.assemble(0);
    FAIL() << "assembled a generation with no intact copy";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("intact"), std::string::npos)
        << e.what();
  }
}

TEST(ChunkIntegrity, CorruptedGenerationFallsBackToOlderSealed) {
  rts::Runtime rt({3, 1});
  rts::CheckpointStore store;
  store.init(&rt, nullptr);
  for (int step : {0, 1}) {
    for (int r = 0; r < 3; ++r) store.commit(r, step, tag(r, step));
    rt.drain();
    store.seal(step);
  }
  EXPECT_EQ(store.latestRestorableStep(), 1);

  // Both copies of rank 2's step-1 chunk rot (own + the buddy copy rank 0
  // holds): recovery falls back one sealed generation instead of
  // restoring garbage.
  ASSERT_TRUE(store.corruptStoredChunk(2, 2, 1));
  ASSERT_TRUE(store.corruptStoredChunk(0, 2, 1));
  EXPECT_EQ(store.latestRestorableStep(), 0);
  EXPECT_EQ(store.assemble(0)[2], tag(2, 0));
}

TEST(ChunkIntegrity, CorruptStoredChunkReportsMisses) {
  rts::Runtime rt({2, 1});
  rts::CheckpointStore store;
  store.init(&rt, nullptr);
  EXPECT_FALSE(store.corruptStoredChunk(0, 0, 7));   // nothing stored
  EXPECT_FALSE(store.corruptStoredChunk(1, 0, 7));   // no held copy
  EXPECT_FALSE(store.corruptStoredChunk(-1, 0, 7));  // out of range
}

// --- gravity harness (bitwise-reproducible kd config) ----------------------

class LivenessGravity : public Driver<CentroidData, KdTreeType> {
 public:
  Configuration overrides;
  int traversal_calls = 0;

  void configure(Configuration& conf) override {
    conf = overrides;
    conf.tree_type = TreeType::eKd;
    conf.decomp_type = DecompType::eKd;
    conf.min_subtrees = 2;
    conf.min_partitions = 2;
    conf.bucket_size = 16;
    conf.fetch_depth = 32;
    conf.num_iterations = 6;
  }
  void traversal(int) override {
    ++traversal_calls;
    startDown<GravityVisitor>();
  }
  void postTraversal(int) override {
    forest().forEachParticle([](Particle& p) {
      p.velocity += p.acceleration * 1e-3;
      p.position += p.velocity * 1e-3;
    });
  }
};

struct RunResult {
  std::vector<Particle> particles;
  int traversal_calls = 0;
  std::uint64_t crashes = 0;
  std::uint64_t frames_corrupt = 0;
};

RunResult runGravity(Configuration overrides,
                     rts::TransportConfig transport = {},
                     Instrumentation instr = {}) {
  rts::Runtime::Config rc;
  rc.n_procs = 2;
  rc.workers_per_proc = 1;
  rc.transport = transport;
  rts::Runtime rt(rc);
  LivenessGravity app;
  app.overrides = std::move(overrides);
  app.overrides.transport = transport;
  app.run(rt, makeParticles(uniformCube(600, 77)), instr);
  RunResult out{app.forest().collect(), app.traversal_calls, rt.crashCount(),
                0};
  if (auto* tcp = dynamic_cast<rts::TcpTransport*>(&rt.transport())) {
    out.frames_corrupt = tcp->framesCorrupt();
  }
  return out;
}

void expectBitwiseEqual(const std::vector<Particle>& a,
                        const std::vector<Particle>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(0, std::memcmp(&a[i].position, &b[i].position,
                             sizeof(a[i].position)))
        << "position of particle " << i << " differs";
    EXPECT_EQ(0, std::memcmp(&a[i].velocity, &b[i].velocity,
                             sizeof(a[i].velocity)))
        << "velocity of particle " << i << " differs";
    EXPECT_EQ(0, std::memcmp(&a[i].acceleration, &b[i].acceleration,
                             sizeof(a[i].acceleration)))
        << "acceleration of particle " << i << " differs";
  }
}

void expectEqualWithin(const std::vector<Particle>& a,
                       const std::vector<Particle>& b, double rel) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double scale = std::abs(a[i].position.length()) + 1.0;
    EXPECT_NEAR(a[i].position.x, b[i].position.x, rel * scale);
    EXPECT_NEAR(a[i].position.y, b[i].position.y, rel * scale);
    EXPECT_NEAR(a[i].position.z, b[i].position.z, rel * scale);
  }
}

/// Wedge config: the victim hangs at iteration 2, heartbeats notice, and
/// restart recovery rewinds to the iteration-1 sealed generation.
Configuration wedgeAtIterTwo() {
  Configuration conf;
  conf.fault.wedge_step = 2;
  conf.fault.wedge_rank = 1;
  conf.fault.drain_deadline_ms = 3000.0;
  conf.checkpoint_every = 2;  // generations sealed after iterations 1, 3
  conf.recovery_mode = RecoveryMode::kRestart;
  return conf;
}

rts::TransportConfig heartbeats(double interval_ms, int misses = 3) {
  rts::TransportConfig t;
  t.heartbeat_interval_ms = interval_ms;
  t.miss_threshold = misses;
  return t;
}

// --- in-process liveness ---------------------------------------------------

TEST(InProcLiveness, WedgedRankIsDetectedByHeartbeatsAndRecoversBitwise) {
  const RunResult clean = runGravity(Configuration{});
  Observability ob;
  const RunResult wedged =
      runGravity(wedgeAtIterTwo(), heartbeats(25.0), ob.handle());

  // The wedge parked rank 1's scheduling; the logical heartbeat monitor
  // missed enough round-trips to promote it to a crash, and restart
  // recovery rewound to the iteration-1 checkpoint: extra traversals,
  // then physics matches the fault-free run bitwise.
  EXPECT_EQ(clean.traversal_calls, 6);
  EXPECT_GT(wedged.traversal_calls, 6);
  EXPECT_EQ(wedged.crashes, 1u);
  EXPECT_GT(ob.handle().metrics->counter("rts.heartbeat.missed").value(), 0u);
  EXPECT_EQ(ob.handle().metrics->counter("rts.recoveries.restart").value(),
            1u);
  expectBitwiseEqual(clean.particles, wedged.particles);

  // The wedge and the missed heartbeats also left fault-category spans.
  bool saw_wedge = false;
  bool saw_missed = false;
  for (const auto& ev : ob.handle().trace->snapshot()) {
    if (std::string_view(ev.name) == "rts.wedge") saw_wedge = true;
    if (std::string_view(ev.name) == "rts.heartbeat.missed") saw_missed = true;
  }
  EXPECT_TRUE(saw_wedge);
  EXPECT_TRUE(saw_missed);
}

TEST(InProcLiveness, CorruptFramesAreHealedByRetransmitBitwise) {
  const RunResult clean = runGravity(Configuration{});
  Configuration conf;
  conf.fault.enabled = true;
  conf.fault.seed = 20260808ull;
  conf.fault.corrupt_p = 0.1;
  conf.fault.drain_deadline_ms = 60000.0;
  Observability ob;
  const RunResult corrupted = runGravity(conf, {}, ob.handle());
  EXPECT_EQ(corrupted.traversal_calls, 6);
  // Corruption fired and the metrics saw it, yet retransmission healed
  // every discarded copy: not one bit of physics changed.
  EXPECT_GT(ob.handle().metrics->counter("rts.frames_corrupt").value(), 0u);
  expectBitwiseEqual(clean.particles, corrupted.particles);
}

// --- recovery policy -------------------------------------------------------

TEST(RecoveryPolicySuite, CrashLoopEscalatesRestartToShrink) {
  // max_restarts_per_rank = 0: the very first restart request already
  // exceeds the rank's budget, so the Driver escalates to shrink — the
  // dead rank stays out and the run completes on the survivor.
  const RunResult clean = runGravity(Configuration{});
  Configuration conf;
  conf.fault.crash_step = 2;
  conf.fault.crash_rank = 1;
  conf.fault.drain_deadline_ms = 3000.0;
  conf.checkpoint_every = 2;
  conf.recovery_mode = RecoveryMode::kRestart;
  conf.recovery.max_restarts_per_rank = 0;
  Observability ob;
  const RunResult crashed = runGravity(conf, {}, ob.handle());

  EXPECT_GT(crashed.traversal_calls, 6);
  EXPECT_EQ(crashed.crashes, 1u);
  EXPECT_EQ(ob.handle().metrics->counter("rts.recoveries.escalated").value(),
            1u);
  EXPECT_EQ(ob.handle().metrics->counter("rts.recoveries.shrink").value(),
            1u);
  EXPECT_EQ(ob.handle().metrics->counter("rts.recoveries.restart").value(),
            0u);
  // Shrink recovery: same physics to accumulation-order round-off.
  expectEqualWithin(clean.particles, crashed.particles, 1e-12);

  bool saw_escalation = false;
  for (const auto& ev : ob.handle().trace->snapshot()) {
    if (std::string_view(ev.name) == "recovery.escalated") {
      saw_escalation = true;
    }
  }
  EXPECT_TRUE(saw_escalation);
}

TEST(RecoveryPolicySuite, ExhaustedGlobalBudgetThrowsLoudly) {
  Configuration conf;
  conf.fault.crash_step = 2;
  conf.fault.crash_rank = 1;
  conf.fault.drain_deadline_ms = 3000.0;
  conf.checkpoint_every = 2;
  conf.recovery.max_recoveries = 0;  // recovery itself is forbidden
  try {
    runGravity(conf);
    FAIL() << "run completed despite a crash with max_recoveries = 0";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("recovery budget exhausted"), std::string::npos)
        << what;
    EXPECT_NE(what.find("max_recoveries"), std::string::npos) << what;
  }
}

TEST(RecoveryPolicySuite, BackoffDelaysButDoesNotChangeTheResult) {
  const RunResult clean = runGravity(Configuration{});
  Configuration conf;
  conf.fault.crash_step = 2;
  conf.fault.crash_rank = 1;
  conf.fault.drain_deadline_ms = 3000.0;
  conf.checkpoint_every = 2;
  conf.recovery_mode = RecoveryMode::kRestart;
  conf.recovery.restart_backoff_ms = 50.0;  // small but real pause
  const RunResult crashed = runGravity(conf);
  EXPECT_GT(crashed.traversal_calls, 6);
  EXPECT_EQ(crashed.crashes, 1u);
  expectBitwiseEqual(clean.particles, crashed.particles);
}

// --- tcp liveness ----------------------------------------------------------

rts::TransportConfig tcpHeartbeats(double interval_ms, int misses = 3) {
  rts::TransportConfig t = heartbeats(interval_ms, misses);
  t.kind = rts::TransportKind::kTcp;
  return t;
}

TEST(TcpLiveness, SigstoppedRankIsDetectedByHeartbeatsAndRecoversBitwise) {
  SKIP_UNDER_TSAN();
  const RunResult clean = runGravity(Configuration{});
  Configuration conf = wedgeAtIterTwo();
  conf.fault.drain_deadline_ms = 4000.0;
  Observability ob;
  const RunResult wedged =
      runGravity(conf, tcpHeartbeats(50.0), ob.handle());

  // The wedge SIGSTOPped rank 1's OS process: its socket stayed open, no
  // EOF ever arrived, and only the missed heartbeat pongs gave it away.
  // Past the miss threshold the transport SIGKILLed the child, the EOF
  // funneled into markCrashed, and checkpoint recovery re-ran the lost
  // iterations — physics bitwise-equal to the fault-free run.
  EXPECT_EQ(clean.traversal_calls, 6);
  EXPECT_GT(wedged.traversal_calls, 6);
  EXPECT_EQ(wedged.crashes, 1u);
  EXPECT_GT(ob.handle().metrics->counter("rts.heartbeat.missed").value(), 0u);
  expectBitwiseEqual(clean.particles, wedged.particles);
}

TEST(TcpLiveness, SeededFrameCorruptionIsHealedByRetransmitBitwise) {
  SKIP_UNDER_TSAN();
  const RunResult clean = runGravity(Configuration{});
  Configuration conf;
  conf.fault.enabled = true;
  conf.fault.seed = 20260808ull;
  conf.fault.corrupt_p = 0.05;
  conf.fault.drain_deadline_ms = 60000.0;
  rts::TransportConfig t;
  t.kind = rts::TransportKind::kTcp;
  const RunResult corrupted = runGravity(conf, t);

  // Real frames had payload bits flipped on the wire; the rank processes'
  // CRC checks nacked them, the reliable layer retransmitted, and the
  // physics is still bitwise the fault-free run.
  EXPECT_EQ(corrupted.traversal_calls, 6);
  EXPECT_GT(corrupted.frames_corrupt, 0u);
  expectBitwiseEqual(clean.particles, corrupted.particles);
}

}  // namespace
}  // namespace paratreet
