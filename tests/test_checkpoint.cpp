// Checkpoint/recovery acceptance suite: a rank crash mid-step with
// double in-memory checkpointing enabled must recover and finish with
// physics equal to the fault-free run — bitwise when the rank count is
// restored (RecoveryMode::kRestart), within 1e-12 when the run shrinks
// onto the survivors (kShrink). A crash with checkpointing disabled must
// surface as a thrown QuiescenceTimeout diagnostic, never a hang. The
// CheckpointStore's generation protocol (double buddy copies, last two
// sealed generations, unsealed-generation fallback) is unit-tested below.
//
// The gravity setup reuses test_chaos.cpp's bitwise-reproducible config:
// a binary kd-tree, two Subtrees and two Partitions on 2 procs x 1
// worker, fetch_depth shipping a whole remote subtree per fill.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "apps/gravity/gravity.hpp"
#include "core/driver.hpp"
#include "observability/report.hpp"
#include "rts/checkpoint.hpp"

namespace paratreet {
namespace {

/// Multi-iteration leapfrog gravity on the bitwise-reproducible kd
/// config; `overrides` carries the checkpoint/fault knobs under test.
class CheckpointedGravity : public Driver<CentroidData, KdTreeType> {
 public:
  Configuration overrides;
  int traversal_calls = 0;

  void configure(Configuration& conf) override {
    conf = overrides;
    conf.tree_type = TreeType::eKd;
    conf.decomp_type = DecompType::eKd;
    conf.min_subtrees = 2;
    conf.min_partitions = 2;
    conf.bucket_size = 16;
    conf.fetch_depth = 32;
    conf.num_iterations = 6;
  }
  void traversal(int) override {
    ++traversal_calls;
    startDown<GravityVisitor>();
  }
  void postTraversal(int) override {
    forest().forEachParticle([](Particle& p) {
      p.velocity += p.acceleration * 1e-3;
      p.position += p.velocity * 1e-3;
    });
  }
};

/// A crash schedule that kills rank 1 a few tasks into iteration 3, with
/// a watchdog deadline short enough to keep the suite fast.
Configuration crashAtIterThree() {
  Configuration conf;
  conf.fault.crash_step = 3;
  conf.fault.crash_rank = 1;
  conf.fault.crash_after_tasks = 3;
  conf.fault.drain_deadline_ms = 2000.0;
  return conf;
}

struct RunResult {
  std::vector<Particle> particles;
  int traversal_calls = 0;
};

RunResult runApp(Configuration overrides, Instrumentation instr = {}) {
  rts::Runtime rt({2, 1});
  CheckpointedGravity app;
  app.overrides = std::move(overrides);
  app.run(rt, makeParticles(uniformCube(600, 77)), instr);
  return {app.forest().collect(), app.traversal_calls};
}

void expectBitwiseEqual(const std::vector<Particle>& a,
                        const std::vector<Particle>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(0, std::memcmp(&a[i].position, &b[i].position,
                             sizeof(a[i].position)))
        << "position of particle " << i << " differs";
    EXPECT_EQ(0, std::memcmp(&a[i].velocity, &b[i].velocity,
                             sizeof(a[i].velocity)))
        << "velocity of particle " << i << " differs";
    EXPECT_EQ(0, std::memcmp(&a[i].acceleration, &b[i].acceleration,
                             sizeof(a[i].acceleration)))
        << "acceleration of particle " << i << " differs";
    EXPECT_EQ(0, std::memcmp(&a[i].potential, &b[i].potential,
                             sizeof(a[i].potential)))
        << "potential of particle " << i << " differs";
  }
}

void expectEqualWithin(const std::vector<Particle>& a,
                       const std::vector<Particle>& b, double tol) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR((a[i].position - b[i].position).length(), 0.0, tol)
        << "position of particle " << i;
    EXPECT_NEAR((a[i].velocity - b[i].velocity).length(), 0.0, tol)
        << "velocity of particle " << i;
    EXPECT_NEAR((a[i].acceleration - b[i].acceleration).length(), 0.0, tol)
        << "acceleration of particle " << i;
    EXPECT_NEAR(a[i].potential, b[i].potential, tol)
        << "potential of particle " << i;
  }
}

TEST(Recovery, CrashWithRestartRecoveryMatchesFaultFreeBitwise) {
  const RunResult clean = runApp(Configuration{});
  Configuration conf = crashAtIterThree();
  conf.checkpoint_every = 2;  // generations sealed after iterations 1, 3
  conf.recovery_mode = RecoveryMode::kRestart;
  const RunResult crashed = runApp(conf);
  // The crash at iteration 3 rewinds to the iteration-1 checkpoint, so
  // iterations 2 and 3 re-run: more traversals than the fault-free six.
  EXPECT_EQ(clean.traversal_calls, 6);
  EXPECT_GT(crashed.traversal_calls, 6);
  // Restart recovery restores the rank count, so re-decomposition and the
  // re-run iterations reproduce the fault-free accumulation order exactly.
  expectBitwiseEqual(clean.particles, crashed.particles);
}

TEST(Recovery, CrashWithShrinkRecoveryMatchesFaultFreeWithinTolerance) {
  const RunResult clean = runApp(Configuration{});
  Configuration conf = crashAtIterThree();
  conf.checkpoint_every = 2;
  conf.recovery_mode = RecoveryMode::kShrink;
  const RunResult crashed = runApp(conf);
  EXPECT_GT(crashed.traversal_calls, 6);
  // The survivors re-run on one rank: same physics, possibly different
  // floating-point accumulation order.
  expectEqualWithin(clean.particles, crashed.particles, 1e-12);
}

TEST(Recovery, CrashInFirstIterationRecoversFromBaselineCheckpoint) {
  const RunResult clean = runApp(Configuration{});
  Configuration conf = crashAtIterThree();
  conf.fault.crash_step = 0;  // before any periodic checkpoint sealed
  conf.checkpoint_every = 2;
  conf.recovery_mode = RecoveryMode::kRestart;
  const RunResult crashed = runApp(conf);
  // Only the step -1 baseline existed: the whole run restarts from the
  // initial conditions and still matches fault-free bitwise.
  expectBitwiseEqual(clean.particles, crashed.particles);
}

TEST(Recovery, CrashWithoutCheckpointingThrowsDiagnosticInsteadOfHanging) {
  rts::Runtime rt({2, 1});
  CheckpointedGravity app;
  app.overrides = crashAtIterThree();
  app.overrides.fault.drain_deadline_ms = 500.0;
  app.overrides.checkpoint_every = 0;  // disabled: the crash is fatal
  std::string diagnostic;
  try {
    app.run(rt, makeParticles(uniformCube(600, 77)));
    FAIL() << "run() returned despite an unrecoverable rank crash";
  } catch (const rts::QuiescenceTimeout& e) {
    diagnostic = e.what();
  }
  // The watchdog diagnostic names the dead rank and points at the fix.
  EXPECT_NE(diagnostic.find("rank-crash fault"), std::string::npos)
      << diagnostic;
  EXPECT_NE(diagnostic.find("checkpoint"), std::string::npos) << diagnostic;
  EXPECT_NE(diagnostic.find("CRASHED"), std::string::npos) << diagnostic;
  EXPECT_EQ(rt.crashedRanks(), std::vector<int>{1});
}

TEST(Recovery, FaultFreeRunsReportZeroedCheckpointCounters) {
  Observability ob;
  const RunResult clean = runApp(Configuration{}, ob.handle());
  EXPECT_EQ(clean.traversal_calls, 6);
  const auto* bytes = ob.metrics.findCounter("checkpoint.bytes");
  const auto* crashes = ob.metrics.findCounter("rts.crashes");
  const auto* ckpt_s = ob.metrics.findGauge("checkpoint.seconds");
  const auto* rec_s = ob.metrics.findGauge("recovery.seconds");
  ASSERT_NE(bytes, nullptr);
  ASSERT_NE(crashes, nullptr);
  ASSERT_NE(ckpt_s, nullptr);
  ASSERT_NE(rec_s, nullptr);
  EXPECT_EQ(bytes->value(), 0u);
  EXPECT_EQ(crashes->value(), 0u);
  EXPECT_EQ(ckpt_s->value(), 0.0);
  EXPECT_EQ(rec_s->value(), 0.0);
  // And the instruments land in the JSON report, still zero.
  const std::string json = obs::Reporter(ob.handle()).toJson();
  EXPECT_NE(json.find("\"checkpoint.bytes\":0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"rts.crashes\":0"), std::string::npos) << json;
}

TEST(Recovery, CrashRunReportsCheckpointAndRecoveryActivity) {
  Observability ob;
  Configuration conf = crashAtIterThree();
  conf.checkpoint_every = 2;
  const RunResult crashed = runApp(conf, ob.handle());
  EXPECT_GT(crashed.traversal_calls, 6);
  const auto* bytes = ob.metrics.findCounter("checkpoint.bytes");
  const auto* crashes = ob.metrics.findCounter("rts.crashes");
  const auto* ckpt_s = ob.metrics.findGauge("checkpoint.seconds");
  const auto* rec_s = ob.metrics.findGauge("recovery.seconds");
  ASSERT_NE(bytes, nullptr);
  ASSERT_NE(crashes, nullptr);
  ASSERT_NE(ckpt_s, nullptr);
  ASSERT_NE(rec_s, nullptr);
  EXPECT_GT(bytes->value(), 0u);
  EXPECT_EQ(crashes->value(), 1u);
  EXPECT_GT(ckpt_s->value(), 0.0);
  EXPECT_GT(rec_s->value(), 0.0);
  // The recovery shows up as a "driver"-category span named "recovery",
  // and the crash as a "fault" event.
  bool saw_recovery = false, saw_crash_event = false;
  for (const auto& ev : ob.trace.snapshot()) {
    if (std::string_view(ev.name) == "recovery") saw_recovery = true;
    if (std::string_view(ev.name) == "rts.crash") saw_crash_event = true;
  }
  EXPECT_TRUE(saw_recovery);
  EXPECT_TRUE(saw_crash_event);
}

// --- CheckpointStore unit tests --------------------------------------------

std::vector<std::byte> tag(int rank, int step) {
  return {std::byte(0xA0 + rank), std::byte(0xB0 + step)};
}

TEST(CheckpointStore, BuddyIsNextLiveRankInRingOrder) {
  rts::Runtime rt({3, 1});
  rts::CheckpointStore store;
  store.init(&rt, nullptr);
  EXPECT_EQ(store.buddyOf(0), 1);
  EXPECT_EQ(store.buddyOf(1), 2);
  EXPECT_EQ(store.buddyOf(2), 0);
}

TEST(CheckpointStore, BuddyCopyRestoresChunksOfALostRank) {
  rts::Runtime rt({3, 1});
  rts::CheckpointStore store;
  store.init(&rt, nullptr);
  for (int r = 0; r < 3; ++r) store.commit(r, 0, tag(r, 0));
  rt.drain();  // buddy copies are runtime messages
  store.seal(0);
  ASSERT_TRUE(store.sealed(0));
  store.markLost(1);  // rank 1's own memory is gone
  EXPECT_EQ(store.latestRestorableStep(), 0);
  const auto chunks = store.assemble(0);
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[1], tag(1, 0));  // served from rank 2's buddy copy
}

TEST(CheckpointStore, UnsealedGenerationFallsBackToPreviousSealed) {
  rts::Runtime rt({3, 1});
  rts::CheckpointStore store;
  store.init(&rt, nullptr);
  for (int r = 0; r < 3; ++r) store.commit(r, 0, tag(r, 0));
  rt.drain();
  store.seal(0);
  // Generation 1 commits but the crash lands before seal(1).
  for (int r = 0; r < 3; ++r) store.commit(r, 1, tag(r, 1));
  rt.drain();
  store.markLost(2);
  EXPECT_FALSE(store.sealed(1));
  EXPECT_EQ(store.latestRestorableStep(), 0);
  EXPECT_EQ(store.assemble(0)[2], tag(2, 0));
}

TEST(CheckpointStore, KeepsOnlyTheLastTwoSealedGenerations) {
  rts::Runtime rt({2, 1});
  rts::CheckpointStore store;
  store.init(&rt, nullptr);
  for (int step = 0; step < 3; ++step) {
    for (int r = 0; r < 2; ++r) store.commit(r, step, tag(r, step));
    rt.drain();
    store.seal(step);
  }
  EXPECT_FALSE(store.sealed(0));
  EXPECT_TRUE(store.sealed(1));
  EXPECT_TRUE(store.sealed(2));
  EXPECT_EQ(store.latestRestorableStep(), 2);
}

TEST(CheckpointStore, AdjacentDoubleFailureIsUnrecoverable) {
  rts::Runtime rt({3, 1});
  rts::CheckpointStore store;
  store.init(&rt, nullptr);
  for (int r = 0; r < 3; ++r) store.commit(r, 0, tag(r, 0));
  rt.drain();
  store.seal(0);
  // Rank 2's chunk lives on rank 2 (own) and rank 0 (buddy): losing both
  // adjacent ranks loses every copy, exactly as in the real protocol.
  store.markLost(2);
  store.markLost(0);
  EXPECT_EQ(store.latestRestorableStep(), rts::CheckpointStore::kNoStep);
  EXPECT_THROW(store.assemble(0), std::runtime_error);
}

}  // namespace
}  // namespace paratreet
