#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "rts/profiler.hpp"
#include "rts/reduction.hpp"
#include "rts/reliable.hpp"
#include "rts/runtime.hpp"
#include "util/timer.hpp"

namespace paratreet::rts {
namespace {

TEST(Runtime, RunsEnqueuedTasks) {
  Runtime rt({2, 2});
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    rt.enqueue(i % 2, [&counter] { counter.fetch_add(1); });
  }
  rt.drain();
  EXPECT_EQ(counter.load(), 100);
}

TEST(Runtime, TasksRunOnTheirProc) {
  Runtime rt({3, 2});
  std::atomic<int> wrong{0};
  for (int p = 0; p < 3; ++p) {
    for (int i = 0; i < 20; ++i) {
      rt.enqueue(p, [p, &wrong] {
        if (Runtime::currentProc() != p) wrong.fetch_add(1);
        if (Runtime::currentWorker() < 0 || Runtime::currentWorker() >= 2) {
          wrong.fetch_add(1);
        }
      });
    }
  }
  rt.drain();
  EXPECT_EQ(wrong.load(), 0);
}

TEST(Runtime, CurrentProcOffWorkerIsMinusOne) {
  EXPECT_EQ(Runtime::currentProc(), -1);
  EXPECT_EQ(Runtime::currentWorker(), -1);
}

TEST(Runtime, TasksCanSpawnTasks) {
  Runtime rt({2, 1});
  std::atomic<int> counter{0};
  // A chain of 50 tasks bouncing between procs.
  std::function<void(int)> bounce = [&](int depth) {
    counter.fetch_add(1);
    if (depth < 49) {
      rt.enqueue(depth % 2, [&bounce, depth] { bounce(depth + 1); });
    }
  };
  rt.enqueue(0, [&bounce] { bounce(0); });
  rt.drain();
  EXPECT_EQ(counter.load(), 50);
}

TEST(Runtime, DrainWaitsForNestedSpawns) {
  Runtime rt({1, 2});
  std::atomic<int> counter{0};
  rt.enqueue(0, [&] {
    for (int i = 0; i < 10; ++i) {
      rt.enqueue(0, [&] {
        for (int j = 0; j < 10; ++j) {
          rt.enqueue(0, [&] { counter.fetch_add(1); });
        }
      });
    }
  });
  rt.drain();
  EXPECT_EQ(counter.load(), 100);
}

TEST(Runtime, DrainIsReusable) {
  Runtime rt({2, 1});
  std::atomic<int> c{0};
  rt.enqueue(0, [&] { c.fetch_add(1); });
  rt.drain();
  EXPECT_EQ(c.load(), 1);
  rt.enqueue(1, [&] { c.fetch_add(1); });
  rt.drain();
  EXPECT_EQ(c.load(), 2);
}

TEST(Runtime, SendCountsMessagesAndBytes) {
  Runtime rt({2, 1});
  rt.send(0, 1, 128, [] {});
  rt.send(1, 0, 64, [] {});
  rt.drain();
  const auto stats = rt.stats();
  EXPECT_EQ(stats.messages, 2u);
  EXPECT_EQ(stats.bytes, 192u);
  rt.resetStats();
  EXPECT_EQ(rt.stats().messages, 0u);
}

TEST(Runtime, SendDeliversToDestination) {
  Runtime rt({3, 1});
  std::atomic<int> delivered_on{-1};
  rt.send(0, 2, 10, [&] { delivered_on = Runtime::currentProc(); });
  rt.drain();
  EXPECT_EQ(delivered_on.load(), 2);
}

TEST(Runtime, CommModelDelaysDelivery) {
  Runtime::Config config;
  config.n_procs = 2;
  config.workers_per_proc = 1;
  config.comm.latency_us = 20000;  // 20 ms
  Runtime rt(config);
  paratreet::WallTimer timer;
  std::atomic<double> arrival{0.0};
  rt.send(0, 1, 1, [&] { arrival = timer.seconds(); });
  rt.drain();
  EXPECT_GE(arrival.load(), 0.015);
}

TEST(Runtime, CommModelSkipsLocalSends) {
  Runtime::Config config;
  config.n_procs = 2;
  config.workers_per_proc = 1;
  config.comm.latency_us = 50000;
  Runtime rt(config);
  paratreet::WallTimer timer;
  std::atomic<double> arrival{99.0};
  rt.send(1, 1, 1, [&] { arrival = timer.seconds(); });
  rt.drain();
  EXPECT_LT(arrival.load(), 0.04);
}

TEST(Runtime, BandwidthTermScalesWithBytes) {
  CommModel model{100.0, 0.5};
  EXPECT_DOUBLE_EQ(model.costUs(0), 100.0);
  EXPECT_DOUBLE_EQ(model.costUs(1000), 600.0);
  EXPECT_TRUE(model.enabled());
  EXPECT_FALSE(CommModel{}.enabled());
}

TEST(Runtime, Broadcast) {
  Runtime rt({4, 1});
  std::mutex m;
  std::set<int> seen;
  rt.broadcast([&](int proc) {
    std::lock_guard lock(m);
    seen.insert(proc);
  });
  rt.drain();
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Runtime, ManyProcsManyWorkersStress) {
  Runtime rt({4, 3});
  std::atomic<std::uint64_t> sum{0};
  for (int i = 0; i < 2000; ++i) {
    rt.enqueue(i % 4, [&sum, i] { sum.fetch_add(static_cast<std::uint64_t>(i)); });
  }
  rt.drain();
  EXPECT_EQ(sum.load(), 2000ull * 1999 / 2);
}

TEST(Reduction, CombinesAllContributions) {
  Runtime rt({2, 2});
  Reduction<int, std::plus<int>> red(10, 0);
  for (int i = 0; i < 10; ++i) {
    rt.enqueue(i % 2, [&red, i] { red.contribute(i + 1); });
  }
  EXPECT_EQ(red.wait(), 55);
  rt.drain();
}

TEST(Reduction, ResetAllowsReuse) {
  Reduction<int, std::plus<int>> red(2, 0);
  red.contribute(3);
  red.contribute(4);
  EXPECT_EQ(red.wait(), 7);
  red.reset(100);
  red.contribute(1);
  red.contribute(1);
  EXPECT_EQ(red.wait(), 102);
}

TEST(Reduction, MaxOperator) {
  auto max_op = [](double a, double b) { return a > b ? a : b; };
  Reduction<double, decltype(max_op)> red(3, -1e300, max_op);
  red.contribute(1.5);
  red.contribute(9.0);
  red.contribute(-2.0);
  EXPECT_DOUBLE_EQ(red.wait(), 9.0);
}

TEST(Latch, CountsDown) {
  Runtime rt({2, 1});
  Latch latch(5);
  for (int i = 0; i < 5; ++i) {
    rt.enqueue(i % 2, [&latch] { latch.countDown(); });
  }
  latch.wait();  // must not hang
  rt.drain();
  SUCCEED();
}

TEST(Latch, ExtraCountDownsAreIgnored) {
  Latch latch(1);
  latch.countDown();
  latch.countDown();
  latch.wait();
  SUCCEED();
}

TEST(Profiler, AccumulatesPerActivity) {
  ActivityProfiler prof;
  prof.record(Activity::kLocalTraversal, 0.5);
  prof.record(Activity::kLocalTraversal, 0.25);
  prof.record(Activity::kCacheRequest, 0.125);
  EXPECT_NEAR(prof.seconds(Activity::kLocalTraversal), 0.75, 1e-6);
  EXPECT_NEAR(prof.seconds(Activity::kCacheRequest), 0.125, 1e-6);
  EXPECT_EQ(prof.count(Activity::kLocalTraversal), 2u);
  EXPECT_NEAR(prof.totalSeconds(), 0.875, 1e-6);
  prof.reset();
  EXPECT_DOUBLE_EQ(prof.totalSeconds(), 0.0);
}

TEST(Profiler, ScopeRecordsElapsed) {
  ActivityProfiler prof;
  {
    ActivityScope scope(&prof, Activity::kTreeBuild);
    paratreet::WallTimer t;
    while (t.seconds() < 0.01) {
    }
  }
  EXPECT_GE(prof.seconds(Activity::kTreeBuild), 0.009);
  EXPECT_EQ(prof.count(Activity::kTreeBuild), 1u);
}

TEST(Profiler, NullProfilerScopeIsNoop) {
  ActivityScope scope(nullptr, Activity::kOther);
  SUCCEED();
}

TEST(Profiler, TimelineBinsActivity) {
  ActivityProfiler prof;
  prof.enableTimeline(0.02);
  {
    ActivityScope scope(&prof, Activity::kLocalTraversal);
    paratreet::WallTimer t;
    while (t.seconds() < 0.005) {
    }
  }
  // Wait past the first bin, then record a different activity.
  paratreet::WallTimer wait;
  while (wait.seconds() < 0.025) {
  }
  {
    ActivityScope scope(&prof, Activity::kCacheInsertion);
    paratreet::WallTimer t;
    while (t.seconds() < 0.005) {
    }
  }
  EXPECT_TRUE(prof.timelineEnabled());
  EXPECT_GT(prof.timelineSeconds(0, Activity::kLocalTraversal), 0.004);
  EXPECT_DOUBLE_EQ(prof.timelineSeconds(0, Activity::kCacheInsertion), 0.0);
  const std::size_t last = prof.timelineLastBin();
  EXPECT_GE(last, 1u);
  EXPECT_GT(prof.timelineSeconds(last, Activity::kCacheInsertion), 0.004);
  prof.reset();
  EXPECT_DOUBLE_EQ(prof.timelineSeconds(0, Activity::kLocalTraversal), 0.0);
}

TEST(Profiler, TimelineClampsToLastBin) {
  ActivityProfiler prof;
  prof.enableTimeline(1e-9);  // absurdly fine bins: everything clamps
  {
    paratreet::WallTimer warm;
    while (warm.seconds() < 0.001) {
    }
  }
  {
    ActivityScope scope(&prof, Activity::kOther);
    paratreet::WallTimer t;
    while (t.seconds() < 0.001) {
    }
  }
  EXPECT_EQ(prof.timelineLastBin(), ActivityProfiler::kMaxBins - 1);
}

TEST(Profiler, ActivityNamesAligned) {
  EXPECT_EQ(kActivityNames[static_cast<std::size_t>(Activity::kTreeBuild)],
            "tree build");
  EXPECT_EQ(kActivityNames.size(), kNumActivities);
}

TEST(Runtime, ConcurrentSendsFromWorkers) {
  Runtime rt({3, 2});
  std::atomic<int> received{0};
  rt.broadcast([&](int proc) {
    for (int i = 0; i < 50; ++i) {
      rt.send(proc, (proc + 1) % 3, 8, [&received] { received.fetch_add(1); });
    }
  });
  rt.drain();
  EXPECT_EQ(received.load(), 150);
  EXPECT_EQ(rt.stats().messages, 150u);
}

TEST(Runtime, EnqueueRejectsOutOfRangeProc) {
  Runtime rt({2, 1});
  EXPECT_THROW(rt.enqueue(2, [] {}), std::out_of_range);
  EXPECT_THROW(rt.enqueue(-1, [] {}), std::out_of_range);
  try {
    rt.enqueue(7, [] {});
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    // The message must name the offending rank and the valid range.
    EXPECT_NE(std::string(e.what()).find("rank 7"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("[0, 2)"), std::string::npos)
        << e.what();
  }
  rt.drain();  // a rejected enqueue must not leak a pending count
}

TEST(Runtime, SendRejectsOutOfRangeRanks) {
  Runtime rt({2, 1});
  EXPECT_THROW(rt.send(0, 5, 8, [] {}), std::out_of_range);
  EXPECT_THROW(rt.send(-3, 1, 8, [] {}), std::out_of_range);
  EXPECT_EQ(rt.stats().messages, 0u);  // rejected sends are not counted
  rt.drain();
}

TEST(DelayedTask, EqualReadyTimesBreakTiesFifo) {
  // The comparator orders the delayed priority_queue earliest-first, and
  // by insertion sequence when ready-times collide (FIFO delivery).
  const auto t0 = std::chrono::steady_clock::now();
  const auto t1 = t0 + std::chrono::microseconds(50);
  detail::DelayedTask early{t0, 7, nullptr};
  detail::DelayedTask late{t1, 1, nullptr};
  detail::DelayedTask first{t0, 2, nullptr};
  // operator< is inverted for the max-heap: "less" = delivered later.
  EXPECT_LT(late, early);            // later ready-time pops after
  EXPECT_LT(early, first);           // same ready-time: higher seq pops after
  EXPECT_FALSE(first < first);       // irreflexive

  std::priority_queue<detail::DelayedTask> q;
  std::vector<int> order;
  for (int seq : {3, 1, 2}) {
    q.push(detail::DelayedTask{t0, static_cast<std::uint64_t>(seq),
                               [&order, seq] { order.push_back(seq); }});
  }
  q.push(detail::DelayedTask{t0 - std::chrono::microseconds(10), 9,
                             [&order] { order.push_back(9); }});
  while (!q.empty()) {
    q.top().task();
    q.pop();
  }
  EXPECT_EQ(order, (std::vector<int>{9, 1, 2, 3}));
}

TEST(CommModel, DelayedMessagesDeliverFifoAtEqualCost) {
  // Same byte count => same modeled delay; delivery must preserve the
  // send order even though it goes through the delayed queue.
  Runtime::Config cfg;
  cfg.n_procs = 2;
  cfg.workers_per_proc = 1;
  cfg.comm.latency_us = 200.0;
  Runtime rt(cfg);
  std::vector<int> order;
  std::mutex mutex;
  for (int i = 0; i < 32; ++i) {
    rt.send(0, 1, 8, [i, &order, &mutex] {
      std::lock_guard lock(mutex);
      order.push_back(i);
    });
  }
  rt.drain();
  ASSERT_EQ(order.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

// --- reliable-layer abandonment racing in-flight retransmits ---------------

/// A dead rank's retransmit chains must retire on their next timer instead
/// of spinning forever: with every copy dropped the chains would otherwise
/// retransmit until the (huge) retry budget ran out, and drain() here
/// would block for minutes.
TEST(Reliable, AbandonRankRetiresInflightRetransmitChains) {
  Runtime rt({2, 1});
  FaultConfig fc;
  fc.enabled = true;
  fc.drop_p = 1.0;  // every physical copy is lost: pure retransmit chains
  fc.max_transport_retries = 1000000;
  fc.retry_backoff_us = 100.0;
  fc.retry_backoff_cap_us = 200.0;
  FaultInjector injector(fc);
  ReliableLayer layer(rt, injector);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    layer.send(0, 1, 64, [&ran] { ran.fetch_add(1); });
  }
  // Let several retransmission timers fire while the chains are live.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_EQ(layer.inflight(), 8u);
  layer.abandonRank(1);
  rt.drain();
  EXPECT_EQ(ran.load(), 0);
  EXPECT_EQ(layer.inflight(), 0u);
  EXPECT_EQ(layer.acked(), 0u);
  EXPECT_GT(layer.retries(), 0u);
}

/// A copy already "on the wire" (queued for delivery) when its destination
/// rank is abandoned must be discarded without running the payload and
/// without acking — an ack would tell the sender the dead rank processed
/// the message.
TEST(Reliable, CopyOnTheWireToAbandonedRankIsDiscardedWithoutAck) {
  Runtime rt({2, 1});
  FaultConfig fc;
  fc.enabled = true;
  fc.retry_backoff_us = 500.0;
  fc.retry_backoff_cap_us = 1000.0;
  fc.max_transport_retries = 3;
  FaultInjector injector(fc);
  ReliableLayer layer(rt, injector);
  std::atomic<bool> ran{false};
  // Park proc 1's only worker so the delivery task sits queued — the copy
  // is in flight when the destination dies.
  std::atomic<bool> hold{true};
  rt.enqueue(1, [&hold] {
    while (hold.load()) std::this_thread::yield();
  });
  layer.send(0, 1, 64, [&ran] { ran.store(true); });
  layer.abandonRank(1);
  hold.store(false);
  rt.drain();
  EXPECT_FALSE(ran.load());       // payload must not run on the dead rank
  EXPECT_EQ(layer.acked(), 0u);   // and no late ack may claim it was processed
  EXPECT_EQ(layer.inflight(), 0u);  // the ack timer retired the entry instead
}

/// abandonAll() (runtime teardown) racing live retransmit timers: every
/// pending entry is released as its timer fires, from every sender at once.
TEST(Reliable, AbandonAllRacingRetransmitTimersReleasesEverything) {
  Runtime rt({3, 1});
  FaultConfig fc;
  fc.enabled = true;
  fc.drop_p = 1.0;
  fc.max_transport_retries = 1000000;
  fc.retry_backoff_us = 100.0;
  fc.retry_backoff_cap_us = 200.0;
  FaultInjector injector(fc);
  ReliableLayer layer(rt, injector);
  std::atomic<int> ran{0};
  for (int i = 0; i < 12; ++i) {
    layer.send(i % 3, (i + 1) % 3, 64, [&ran] { ran.fetch_add(1); });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  layer.abandonAll();
  rt.drain();
  EXPECT_EQ(ran.load(), 0);
  EXPECT_EQ(layer.inflight(), 0u);
}

/// End-to-end over the runtime: a rank crashes with reliable delivery
/// active, recovery abandons its traffic, and the restarted incarnation
/// must never execute a pre-crash message — while new traffic flows.
TEST(Runtime, RecoveredRankDoesNotResurrectAbandonedMessages) {
  Runtime::Config cfg;
  cfg.n_procs = 2;
  cfg.workers_per_proc = 1;
  cfg.fault.enabled = true;
  cfg.fault.drop_p = 0.2;  // engage the reliable-delivery layer
  cfg.fault.seed = 7;
  cfg.fault.max_transport_retries = 10;
  cfg.fault.retry_backoff_us = 200.0;
  cfg.fault.retry_backoff_cap_us = 400.0;
  cfg.fault.drain_deadline_ms = 250.0;
  Runtime rt(cfg);
  rt.scheduleCrash(1, 0);
  std::atomic<bool> old_ran{false};
  rt.send(0, 1, 64, [&old_ran] { old_ran.store(true); });
  EXPECT_THROW(rt.drain(), QuiescenceTimeout);
  EXPECT_EQ(rt.crashedRanks(), std::vector<int>{1});
  rt.recoverCrashedRanks(/*restart=*/true);
  EXPECT_TRUE(rt.crashedRanks().empty());
  EXPECT_TRUE(rt.rankAlive(1));
  std::atomic<bool> new_ran{false};
  rt.send(0, 1, 64, [&new_ran] { new_ran.store(true); });
  rt.drain();
  EXPECT_FALSE(old_ran.load());
  EXPECT_TRUE(new_ran.load());
  EXPECT_EQ(rt.crashCount(), 1u);
}

TEST(CommModel, DrainWaitsOutInFlightDelayedMessages) {
  Runtime::Config cfg;
  cfg.n_procs = 2;
  cfg.workers_per_proc = 1;
  cfg.comm.latency_us = 20000.0;  // 20 ms on the modeled wire
  Runtime rt(cfg);
  std::atomic<bool> arrived{false};
  WallTimer timer;
  rt.send(0, 1, 8, [&arrived] { arrived.store(true); });
  rt.drain();
  // drain() must block until the delayed message matured and ran.
  EXPECT_TRUE(arrived.load());
  EXPECT_GE(timer.seconds(), 0.018);
}

}  // namespace
}  // namespace paratreet::rts
