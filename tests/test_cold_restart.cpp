// Cold-restart acceptance suite: kill -9 the ENTIRE job mid-run — every
// rank, not one — relaunch with --resume, and the physics must finish
// bitwise-identical to an uninterrupted run. The child job runs in a
// forked process group so SIGKILL reaches TCP rank grandchildren too;
// the parent polls the checkpoint directory for a mid-run generation,
// nukes the group, then resumes in-process and diffs against the
// fault-free reference. The seeded torn-write fault proves the fallback
// chain end to end: the newest on-disk generation is always damaged, so
// resume must detect it by CRC and restore the older sibling.
//
// The gravity setup reuses the bitwise-reproducible kd config from
// test_chaos.cpp / test_checkpoint.cpp: two Subtrees and two Partitions
// on 2 procs x 1 worker, fetch_depth shipping a whole remote subtree.
//
// The kill-9 tests fork a child that builds a full Runtime (threads, and
// over tcp, rank processes); TSan's shadow state does not survive
// fork-from-instrumented, so they GTEST_SKIP under TSan like the
// transport suite does.

#include <gtest/gtest.h>
#include <signal.h>

#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/gravity/gravity.hpp"
#include "core/driver.hpp"
#include "observability/report.hpp"
#include "rts/checkpoint.hpp"

#if defined(__SANITIZE_THREAD__)
#define PARATREET_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PARATREET_TSAN 1
#endif
#endif
#ifndef PARATREET_TSAN
#define PARATREET_TSAN 0
#endif

#define SKIP_UNDER_TSAN()                                                   \
  do {                                                                      \
    if (PARATREET_TSAN) {                                                   \
      GTEST_SKIP() << "kill-9 tests fork a full job, which TSan cannot "    \
                      "follow; the CI cold-restart job covers this config"; \
    }                                                                       \
  } while (0)

namespace paratreet {
namespace {

// --- filesystem helpers ----------------------------------------------------

std::vector<std::string> listDir(const std::string& dir) {
  std::vector<std::string> out;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return out;
  while (const dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name != "." && name != "..") out.push_back(name);
  }
  ::closedir(d);
  std::sort(out.begin(), out.end());
  return out;
}

void removeAll(const std::string& path) {
  struct stat st{};
  if (::lstat(path.c_str(), &st) != 0) return;
  if (S_ISDIR(st.st_mode)) {
    for (const auto& name : listDir(path)) removeAll(path + "/" + name);
    ::rmdir(path.c_str());
  } else {
    ::unlink(path.c_str());
  }
}

struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/paratreet_cold_XXXXXX";
    path = ::mkdtemp(tmpl);
    EXPECT_FALSE(path.empty());
  }
  ~TempDir() { removeAll(path); }
};

bool pathExists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

/// Names under `dir` matching ckpt_<step> finals; .tmp never qualifies.
std::vector<std::string> generationDirs(const std::string& dir) {
  std::vector<std::string> out;
  for (const auto& name : listDir(dir)) {
    if (name.rfind("ckpt_", 0) == 0 &&
        name.find(".tmp") == std::string::npos) {
      out.push_back(name);
    }
  }
  return out;
}

// --- the gravity job -------------------------------------------------------

/// Multi-step leapfrog gravity on the bitwise-reproducible kd config;
/// `overrides` carries the durable checkpoint knobs under test.
class ColdGravity : public Driver<CentroidData, KdTreeType> {
 public:
  Configuration overrides;
  int steps = 12;
  int bucket = 16;

  void configure(Configuration& conf) override {
    conf = overrides;
    conf.tree_type = TreeType::eKd;
    conf.decomp_type = DecompType::eKd;
    conf.min_subtrees = 2;
    conf.min_partitions = 2;
    conf.bucket_size = bucket;
    conf.fetch_depth = 32;
    conf.num_iterations = steps;
  }
  void traversal(int) override { startDown<GravityVisitor>(); }
  void postTraversal(int) override {
    forest().forEachParticle([](Particle& p) {
      p.velocity += p.acceleration * 1e-3;
      p.position += p.velocity * 1e-3;
    });
  }
};

constexpr std::size_t kParticles = 1200;
constexpr int kSteps = 12;

struct RunResult {
  std::vector<Particle> particles;
  bool resumed = false;
  int resumed_from = 0;
  int skipped = 0;
  std::string diagnostic;
};

RunResult runCold(Configuration overrides,
                  rts::TransportConfig transport = {},
                  Instrumentation instr = {}, int bucket = 16) {
  rts::Runtime::Config rc;
  rc.n_procs = 2;
  rc.workers_per_proc = 1;
  rc.transport = transport;
  rts::Runtime rt(rc);
  ColdGravity app;
  overrides.transport = transport;
  app.overrides = std::move(overrides);
  app.steps = kSteps;
  app.bucket = bucket;
  app.run(rt, makeParticles(uniformCube(kParticles, 77)), instr);
  return {app.forest().collect(), app.resumed(), app.resumedFromStep(),
          app.resumeGenerationsSkipped(), app.resumeDiagnostic()};
}

Configuration durableEveryTwo(const std::string& dir) {
  Configuration conf;
  conf.checkpoint_every = 2;  // generations sealed after steps 1, 3, 5, ...
  conf.checkpoint_dir = dir;
  conf.checkpoint_keep = 2;
  return conf;
}

rts::TransportConfig tcpConfig() {
  rts::TransportConfig t;
  t.kind = rts::TransportKind::kTcp;
  return t;
}

void expectBitwiseEqual(const std::vector<Particle>& a,
                        const std::vector<Particle>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(0, std::memcmp(&a[i].position, &b[i].position,
                             sizeof(a[i].position)))
        << "position of particle " << i << " differs";
    EXPECT_EQ(0, std::memcmp(&a[i].velocity, &b[i].velocity,
                             sizeof(a[i].velocity)))
        << "velocity of particle " << i << " differs";
    EXPECT_EQ(0, std::memcmp(&a[i].acceleration, &b[i].acceleration,
                             sizeof(a[i].acceleration)))
        << "acceleration of particle " << i << " differs";
    EXPECT_EQ(0, std::memcmp(&a[i].potential, &b[i].potential,
                             sizeof(a[i].potential)))
        << "potential of particle " << i << " differs";
  }
}

// --- kill -9 the whole job -------------------------------------------------

/// Fork a child that runs the checkpointed job as its own process group
/// (so TCP rank grandchildren share the pgid), wait for `dir/ckpt_3` to
/// land on disk, then SIGKILL the entire group mid-run. Returns the
/// child's wait status.
int runAndKillWholeJob(const std::string& dir,
                       const rts::TransportConfig& transport) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    // New process group: kill(-pgid) must reach every rank process this
    // Runtime forks, exactly like killing a terminal job with ^C twice.
    ::setpgid(0, 0);
    try {
      runCold(durableEveryTwo(dir), transport);
    } catch (...) {
      ::_exit(3);
    }
    ::_exit(0);
  }
  EXPECT_GT(pid, 0);
  ::setpgid(pid, pid);  // parent's side of the race; EACCES after exec is ok

  // Wait for a mid-run generation to be renamed in. The rename is the
  // commit point, so an existing ckpt_3 is loadable no matter where the
  // kill lands afterwards.
  const std::string probe = dir + "/ckpt_3";
  bool died_early = false;
  int status = 0;
  for (int i = 0; i < 60000 && !pathExists(probe); ++i) {
    if (::waitpid(pid, &status, WNOHANG) == pid) {
      died_early = true;
      break;
    }
    ::usleep(2000);
  }
  if (!died_early) {
    EXPECT_TRUE(pathExists(probe)) << "job never reached checkpoint step 3";
    ::kill(-pid, SIGKILL);
    ::waitpid(pid, &status, 0);
  }
  EXPECT_FALSE(died_early && WIFEXITED(status) && WEXITSTATUS(status) == 3)
      << "child job threw instead of being killed";
  return status;
}

void killNineThenResume(const rts::TransportConfig& transport) {
  TempDir tmp;
  const std::string dir = tmp.path + "/ckpt";
  const RunResult reference = runCold(Configuration{}, transport);

  const int status = runAndKillWholeJob(dir, transport);
  // The whole tree died by SIGKILL — nothing flushed, nothing exited
  // cleanly. (A machine fast enough to finish all 12 steps before the
  // kill still exercises resume below, but the common path is the kill.)
  if (WIFSIGNALED(status)) EXPECT_EQ(WTERMSIG(status), SIGKILL);

  Configuration conf = durableEveryTwo(dir);
  conf.resume = true;
  const RunResult resumed = runCold(conf, transport);
  EXPECT_TRUE(resumed.resumed);
  EXPECT_GE(resumed.resumed_from, -1);
  expectBitwiseEqual(reference.particles, resumed.particles);

  // Retention held through kill, sweep, and the resumed run's own
  // checkpoints: at most keep finals at rest, and no .tmp debris.
  EXPECT_LE(generationDirs(dir).size(), 2u);
  for (const auto& name : listDir(dir)) {
    EXPECT_EQ(name.find(".tmp"), std::string::npos) << name;
  }
}

TEST(ColdRestart, KillNineWholeJobThenResumeMatchesBitwiseInproc) {
  SKIP_UNDER_TSAN();
  killNineThenResume(rts::TransportConfig{});
}

TEST(ColdRestart, KillNineWholeJobThenResumeMatchesBitwiseTcp) {
  SKIP_UNDER_TSAN();
  killNineThenResume(tcpConfig());
}

// --- torn-write fallback, no fork needed -----------------------------------

TEST(ColdRestart, TornNewestGenerationFallsBackToOlderAndMatchesBitwise) {
  TempDir tmp;
  const std::string dir = tmp.path + "/ckpt";
  const RunResult reference = runCold(Configuration{});

  // Full run with the seeded fault: every persist leaves the NEWEST
  // on-disk generation torn and repairs the previously torn one. The
  // last sealed step of a 12-step run is 9 (the final iteration never
  // checkpoints), so the final disk state is ckpt_7 intact, ckpt_9
  // damaged — regardless of where a kill would have landed.
  Configuration writer = durableEveryTwo(dir);
  writer.fault.torn_write = true;
  runCold(writer);
  ASSERT_EQ(generationDirs(dir).size(), 2u);

  Configuration conf = durableEveryTwo(dir);
  conf.resume = true;
  const RunResult resumed = runCold(conf);
  EXPECT_TRUE(resumed.resumed);
  EXPECT_EQ(resumed.resumed_from, 7);
  EXPECT_EQ(resumed.skipped, 1);
  EXPECT_NE(resumed.diagnostic.find("ckpt_9"), std::string::npos)
      << resumed.diagnostic;
  expectBitwiseEqual(reference.particles, resumed.particles);
}

// --- resume edge cases -----------------------------------------------------

TEST(ColdRestart, ResumeWithEmptyDirectoryStartsFresh) {
  TempDir tmp;
  const RunResult reference = runCold(Configuration{});
  Configuration conf = durableEveryTwo(tmp.path + "/virgin");
  conf.resume = true;  // nothing on disk: safe to pass unconditionally
  const RunResult fresh = runCold(conf);
  EXPECT_FALSE(fresh.resumed);
  expectBitwiseEqual(reference.particles, fresh.particles);
}

TEST(ColdRestart, ResumeRejectsAStateShapingConfigChange) {
  TempDir tmp;
  const std::string dir = tmp.path + "/ckpt";
  runCold(durableEveryTwo(dir));
  Configuration conf = durableEveryTwo(dir);
  conf.resume = true;
  // A different bucket size reshapes the tree: restoring those chunks
  // would silently diverge, so resume must refuse, loudly.
  try {
    runCold(conf, rts::TransportConfig{}, Instrumentation{}, /*bucket=*/24);
    FAIL() << "expected resume to reject a config-hash mismatch";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("hash mismatch"), std::string::npos)
        << e.what();
  }
}

TEST(ColdRestart, ResumedRunCountsAColdRestartAndPersistBytes) {
  TempDir tmp;
  const std::string dir = tmp.path + "/ckpt";
  {
    Observability ob;
    runCold(durableEveryTwo(dir), rts::TransportConfig{}, ob.handle());
    EXPECT_GT(ob.handle().metrics->counter("checkpoint.disk_bytes").value(),
              0u);
    EXPECT_EQ(ob.handle().metrics->counter("recovery.cold_restarts").value(),
              0u);
  }
  Observability ob;
  Configuration conf = durableEveryTwo(dir);
  conf.resume = true;
  runCold(conf, rts::TransportConfig{}, ob.handle());
  EXPECT_EQ(ob.handle().metrics->counter("recovery.cold_restarts").value(),
            1u);
}

TEST(ColdRestart, UninterruptedRunRetainsExactlyKeepGenerations) {
  TempDir tmp;
  const std::string dir = tmp.path + "/ckpt";
  runCold(durableEveryTwo(dir));
  // Steps -1 (baseline), 1, 3, 5, 7, 9 were persisted (the final
  // iteration never checkpoints); keep=2 leaves the newest two at rest.
  const auto gens = generationDirs(dir);
  ASSERT_EQ(gens.size(), 2u);
  EXPECT_EQ(gens[0], "ckpt_7");
  EXPECT_EQ(gens[1], "ckpt_9");
}

}  // namespace
}  // namespace paratreet
