#include <gtest/gtest.h>

#include <vector>

#include "cachesim/cachesim.hpp"

namespace paratreet::cachesim {
namespace {

LevelConfig tiny() { return {4 * 64, 64, 2}; }  // 4 lines, 2-way, 2 sets

TEST(Cache, ColdMissThenHit) {
  Cache c(tiny());
  EXPECT_FALSE(c.accessLine(0, false));
  EXPECT_TRUE(c.accessLine(0, false));
  EXPECT_EQ(c.stats().load_accesses, 2u);
  EXPECT_EQ(c.stats().load_misses, 1u);
}

TEST(Cache, LoadAndStoreCountedSeparately) {
  Cache c(tiny());
  c.accessLine(1, true);
  c.accessLine(1, true);
  c.accessLine(1, false);
  EXPECT_EQ(c.stats().store_accesses, 2u);
  EXPECT_EQ(c.stats().store_misses, 1u);
  EXPECT_EQ(c.stats().load_accesses, 1u);
  EXPECT_EQ(c.stats().load_misses, 0u);  // write-allocate installed it
}

TEST(Cache, LruEvictionWithinSet) {
  Cache c(tiny());  // 2 sets, 2 ways; even lines -> set 0
  EXPECT_FALSE(c.accessLine(0, false));
  EXPECT_FALSE(c.accessLine(2, false));
  EXPECT_TRUE(c.accessLine(0, false));   // 0 is now MRU
  EXPECT_FALSE(c.accessLine(4, false));  // evicts 2 (LRU)
  EXPECT_TRUE(c.accessLine(0, false));
  EXPECT_FALSE(c.accessLine(2, false));  // 2 was evicted
}

TEST(Cache, SetsIsolateAddresses) {
  Cache c(tiny());
  // Odd lines map to set 1, evictions in set 0 don't touch them.
  c.accessLine(1, false);
  c.accessLine(0, false);
  c.accessLine(2, false);
  c.accessLine(4, false);
  EXPECT_TRUE(c.accessLine(1, false));
}

TEST(Cache, MissRateComputation) {
  Cache c(tiny());
  for (int i = 0; i < 10; ++i) c.accessLine(static_cast<std::uint64_t>(i * 2), false);
  // 10 distinct lines into a 4-line cache: all miss.
  EXPECT_DOUBLE_EQ(c.stats().loadMissRate(), 1.0);
  EXPECT_DOUBLE_EQ(LevelStats{}.loadMissRate(), 0.0);
  c.resetStats();
  EXPECT_EQ(c.stats().load_accesses, 0u);
}

TEST(SmpHierarchy, PrivateL1SharedL3) {
  SkxConfig config;
  config.l1 = {2 * 64, 64, 2};  // 2-line L1
  config.l2 = {4 * 64, 64, 2};
  config.l3 = {64 * 64, 64, 4};
  SmpHierarchy smp(2, config);
  int x = 0;
  // CPU 0 warms the line through to L3.
  smp.load(0, &x, 4);
  EXPECT_EQ(smp.l1Stats().load_misses, 1u);
  EXPECT_EQ(smp.l3Stats().load_misses, 1u);
  // CPU 1 misses privately but hits the shared L3.
  smp.load(1, &x, 4);
  EXPECT_EQ(smp.l1Stats().load_misses, 2u);
  EXPECT_EQ(smp.l2Stats().load_misses, 2u);
  EXPECT_EQ(smp.l3Stats().load_misses, 1u);  // still just the first
}

TEST(SmpHierarchy, AccessSpanningLinesTouchesEach) {
  SmpHierarchy smp(1);
  alignas(64) unsigned char buf[256];
  smp.load(0, buf, 160);  // 3 lines at 64B
  EXPECT_EQ(smp.l1Stats().load_accesses, 3u);
}

TEST(SmpHierarchy, CyclesGrowWithMisses) {
  SkxConfig config;
  config.l1 = {2 * 64, 64, 2};
  SmpHierarchy smp(1, config);
  std::vector<unsigned char> buf(1 << 20);
  // Stream once: mostly cold misses -> expensive.
  for (std::size_t i = 0; i < buf.size(); i += 64) smp.load(0, &buf[i], 1);
  const double cold = smp.cpuCycles(0);
  smp.resetStats();
  // Hammer one line: all L1 hits -> cheap.
  for (int i = 0; i < 16384; ++i) smp.load(0, buf.data(), 1);
  EXPECT_LT(smp.cpuCycles(0), cold);
  EXPECT_DOUBLE_EQ(smp.maxCpuCycles(), smp.cpuCycles(0));
}

TEST(SmpHierarchy, StoreMissRateCombinesL1L2) {
  SmpHierarchy smp(1);
  int data[64];
  smp.store(0, data, 4);
  smp.store(0, data, 4);
  // 1 L1 store miss of 2 accesses; L2 saw 1 access (1 miss).
  EXPECT_NEAR(smp.storeL1L2MissRate(), 2.0 / 3.0, 1e-12);
}

TEST(SmpHierarchy, WorkingSetFitsInL2NotL1) {
  // A working set larger than L1 but smaller than L2: repeated sweeps
  // miss in L1 and hit in L2.
  SkxConfig config;
  config.l1 = {4 * 64, 64, 4};     // 256 B
  config.l2 = {256 * 64, 64, 8};   // 16 KB
  SmpHierarchy smp(1, config);
  std::vector<unsigned char> buf(4096);  // 64 lines
  for (int sweep = 0; sweep < 10; ++sweep) {
    for (std::size_t i = 0; i < buf.size(); i += 64) smp.load(0, &buf[i], 1);
  }
  const auto l1 = smp.l1Stats();
  const auto l2 = smp.l2Stats();
  EXPECT_GT(l1.loadMissRate(), 0.9);       // thrashes L1
  EXPECT_LT(l2.loadMissRate(), 0.2);       // lives in L2 after sweep 1
}

TEST(SkxConfig, DefaultsMatchTableCaption) {
  // Table II caption: 32KB L1D, 1024KB L2, 33MB L3.
  SkxConfig config;
  EXPECT_EQ(config.l1.capacity_bytes, 32u * 1024);
  EXPECT_EQ(config.l2.capacity_bytes, 1024u * 1024);
  EXPECT_EQ(config.l3.capacity_bytes, 33u * 1024 * 1024);
}

TEST(LevelStats, Accumulate) {
  LevelStats a{10, 2, 4, 1};
  LevelStats b{30, 8, 6, 3};
  a += b;
  EXPECT_EQ(a.load_accesses, 40u);
  EXPECT_EQ(a.load_misses, 10u);
  EXPECT_EQ(a.store_accesses, 10u);
  EXPECT_EQ(a.store_misses, 4u);
  EXPECT_DOUBLE_EQ(a.loadMissRate(), 0.25);
  EXPECT_DOUBLE_EQ(a.storeMissRate(), 0.4);
}

}  // namespace
}  // namespace paratreet::cachesim
