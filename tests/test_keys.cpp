#include <gtest/gtest.h>

#include "core/cache.hpp"  // pathLess
#include "util/key.hpp"
#include "util/rng.hpp"

namespace paratreet {
namespace {

TEST(Keys, SpreadGatherRoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.next() & 0x1fffff;
    EXPECT_EQ(keys::gatherBits3(keys::spreadBits3(v)), v);
  }
}

TEST(Keys, SpreadBitsSpacing) {
  // Each input bit must land every third output position.
  for (int bit = 0; bit < 21; ++bit) {
    const std::uint64_t spread = keys::spreadBits3(1ull << bit);
    EXPECT_EQ(spread, 1ull << (3 * bit));
  }
}

TEST(Keys, ChildParentRoundTrip) {
  const Key root = keys::kRoot;
  for (int bits : {1, 3}) {
    for (unsigned c = 0; c < (1u << bits); ++c) {
      const Key child = keys::child(root, c, bits);
      EXPECT_EQ(keys::parent(child, bits), root);
      EXPECT_EQ(keys::childIndex(child, bits), c);
      EXPECT_EQ(keys::level(child, bits), 1);
    }
  }
}

TEST(Keys, LevelOfDeepKeys) {
  Key k = keys::kRoot;
  for (int lvl = 0; lvl < 20; ++lvl) {
    EXPECT_EQ(keys::level(k, 3), lvl);
    k = keys::child(k, 5, 3);
  }
  Key b = keys::kRoot;
  for (int lvl = 0; lvl < 60; ++lvl) {
    EXPECT_EQ(keys::level(b, 1), lvl);
    b = keys::child(b, 1, 1);
  }
}

TEST(Keys, IsAncestorOf) {
  const Key root = keys::kRoot;
  const Key c2 = keys::child(root, 2, 3);
  const Key c25 = keys::child(c2, 5, 3);
  EXPECT_TRUE(keys::isAncestorOf(root, c25, 3));
  EXPECT_TRUE(keys::isAncestorOf(c2, c25, 3));
  EXPECT_TRUE(keys::isAncestorOf(c25, c25, 3));
  EXPECT_FALSE(keys::isAncestorOf(c25, c2, 3));
  EXPECT_FALSE(keys::isAncestorOf(keys::child(root, 3, 3), c25, 3));
}

TEST(Keys, MortonKeyCorners) {
  const OrientedBox u{Vec3(0), Vec3(1)};
  EXPECT_EQ(keys::mortonKey(Vec3(0, 0, 0), u), 0u);
  // The greatest corner clamps into the last cell: all bits set.
  const std::uint64_t max_key = keys::mortonKey(Vec3(1, 1, 1), u);
  EXPECT_EQ(max_key, (1ull << keys::kMortonBits) - 1);
}

TEST(Keys, MortonKeyFirstSplitIsX) {
  const OrientedBox u{Vec3(0), Vec3(1)};
  // A point in the upper x half must set the top Morton bit.
  const auto hi = keys::mortonKey(Vec3(0.9, 0.1, 0.1), u);
  const auto lo = keys::mortonKey(Vec3(0.1, 0.9, 0.9), u);
  EXPECT_TRUE(hi >> (keys::kMortonBits - 1) & 1u);
  EXPECT_FALSE(lo >> (keys::kMortonBits - 1) & 1u);
}

TEST(Keys, MortonOrderingIsSpatiallyLocal) {
  // Points in the same octant share their top 3 Morton bits.
  const OrientedBox u{Vec3(0), Vec3(1)};
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const Vec3 p{rng.uniform(0.0, 0.5), rng.uniform(0.5, 1.0),
                 rng.uniform(0.0, 0.5)};
    const auto key = keys::mortonKey(p, u);
    EXPECT_EQ(key >> (keys::kMortonBits - 3), 0b010u);
  }
}

TEST(Keys, OctKeyAtLevel) {
  const OrientedBox u{Vec3(0), Vec3(1)};
  const Vec3 p{0.9, 0.1, 0.9};  // octant x-high, y-low, z-high = 0b101
  const auto morton = keys::mortonKey(p, u);
  EXPECT_EQ(keys::octKeyAtLevel(morton, 0), keys::kRoot);
  EXPECT_EQ(keys::octKeyAtLevel(morton, 1), keys::child(keys::kRoot, 0b101, 3));
}

TEST(Keys, BoxForOctKeyRoot) {
  const OrientedBox u{Vec3(0), Vec3(2)};
  EXPECT_EQ(keys::boxForOctKey(keys::kRoot, u), u);
}

TEST(Keys, BoxForOctKeyOctants) {
  const OrientedBox u{Vec3(0), Vec3(2)};
  // Octant 0b111 is the high corner in x, y and z.
  const auto box = keys::boxForOctKey(keys::child(keys::kRoot, 7, 3), u);
  EXPECT_EQ(box.lesser_corner, Vec3(1, 1, 1));
  EXPECT_EQ(box.greater_corner, Vec3(2, 2, 2));
  // Octant 0 is the low corner.
  const auto box0 = keys::boxForOctKey(keys::child(keys::kRoot, 0, 3), u);
  EXPECT_EQ(box0.lesser_corner, Vec3(0, 0, 0));
  EXPECT_EQ(box0.greater_corner, Vec3(1, 1, 1));
}

TEST(Keys, BoxForOctKeyMatchesMortonKey) {
  // Property: a particle's octree node box at any level contains it.
  const OrientedBox u{Vec3(-1), Vec3(1)};
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    const Vec3 p{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
    const auto morton = keys::mortonKey(p, u);
    for (int lvl = 0; lvl <= 6; ++lvl) {
      const Key k = keys::octKeyAtLevel(morton, lvl);
      const auto box = keys::boxForOctKey(k, u);
      EXPECT_TRUE(box.contains(p))
          << "level " << lvl << " point " << p.x << "," << p.y << "," << p.z;
    }
  }
}

TEST(Keys, PathLessAncestorFirst) {
  const Key root = keys::kRoot;
  const Key c0 = keys::child(root, 0, 3);
  const Key c1 = keys::child(root, 1, 3);
  const Key c00 = keys::child(c0, 0, 3);
  const Key c07 = keys::child(c0, 7, 3);
  EXPECT_TRUE(pathLess(root, c0, 3));
  EXPECT_TRUE(pathLess(c0, c1, 3));
  EXPECT_TRUE(pathLess(c00, c1, 3));
  EXPECT_TRUE(pathLess(c07, c1, 3));
  EXPECT_TRUE(pathLess(c0, c07, 3));
  EXPECT_FALSE(pathLess(c1, c07, 3));
}

TEST(Keys, PathLessTotalOrderOnDisjointRegions) {
  // Keys of sibling regions at mixed depths sort by space, not by value.
  const Key a = keys::child(keys::kRoot, 0, 3);           // first octant
  const Key b = keys::child(keys::child(keys::kRoot, 1, 3), 0, 3);
  const Key c = keys::child(keys::kRoot, 2, 3);
  EXPECT_TRUE(pathLess(a, b, 3));
  EXPECT_TRUE(pathLess(b, c, 3));
  EXPECT_TRUE(pathLess(a, c, 3));
}

}  // namespace
}  // namespace paratreet
