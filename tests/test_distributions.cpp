#include <gtest/gtest.h>

#include <cmath>

#include "util/distributions.hpp"
#include "util/stats.hpp"

namespace paratreet {
namespace {

TEST(UniformCube, SizesAndMass) {
  const auto ic = uniformCube(1000, 1);
  EXPECT_EQ(ic.size(), 1000u);
  EXPECT_EQ(ic.positions.size(), 1000u);
  EXPECT_EQ(ic.velocities.size(), 1000u);
  EXPECT_EQ(ic.masses.size(), 1000u);
  double total = 0;
  for (double m : ic.masses) total += m;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(UniformCube, StaysInsideBox) {
  const OrientedBox box{Vec3(-2, 0, 1), Vec3(-1, 5, 3)};
  const auto ic = uniformCube(500, 2, box);
  for (const auto& p : ic.positions) EXPECT_TRUE(box.contains(p));
}

TEST(UniformCube, Deterministic) {
  const auto a = uniformCube(100, 42);
  const auto b = uniformCube(100, 42);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(a.positions[i], b.positions[i]);
  const auto c = uniformCube(100, 43);
  bool any_diff = false;
  for (std::size_t i = 0; i < 100; ++i) {
    if (!(a.positions[i] == c.positions[i])) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(UniformCube, RoughlyUniformOctants) {
  const auto ic = uniformCube(8000, 3);
  int count_high_x = 0;
  for (const auto& p : ic.positions) {
    if (p.x > 0) ++count_high_x;
  }
  EXPECT_NEAR(count_high_x, 4000, 300);
}

TEST(Plummer, CentrallyConcentrated) {
  const auto ic = plummer(4000, 4, 0.1);
  std::size_t inner = 0, outer = 0;
  for (const auto& p : ic.positions) {
    const double r = p.length();
    if (r < 0.1) ++inner;
    if (r > 0.5) ++outer;
    EXPECT_LE(r, 1.0 + 1e-9);  // truncated at 10 scale radii
  }
  // Half the mass lies within ~1.3 scale radii for a Plummer sphere.
  EXPECT_GT(inner, outer);
  EXPECT_GT(inner, 1000u);
}

TEST(Plummer, BoundingBoxScalesWithScaleRadius) {
  const auto small = plummer(1000, 5, 0.01);
  const auto big = plummer(1000, 5, 0.1);
  EXPECT_LT(small.boundingBox().volume(), big.boundingBox().volume());
}

TEST(Clustered, HasClumpsDenserThanUniform) {
  const auto clumped = clustered(4000, 6, 8, 0.02);
  // Measure concentration: mean nearest-cluster distance is small, so the
  // bounding box is similar to uniform but the mean pairwise distance to
  // the nearest of 8 centers is tiny. Use a cheap proxy: count pairs of
  // consecutive particles closer than 0.01 (clustered >> uniform).
  const auto uniform = uniformCube(4000, 6);
  auto close_pairs = [](const InitialConditions& ic) {
    std::size_t n = 0;
    for (std::size_t i = 1; i < ic.size(); ++i) {
      if (distanceSquared(ic.positions[i], ic.positions[i - 1]) < 1e-4) ++n;
    }
    return n;
  };
  EXPECT_GT(close_pairs(clumped), close_pairs(uniform) * 5 + 10);
}

TEST(Clustered, ZeroClustersClampsToOne) {
  const auto ic = clustered(100, 7, 0);
  EXPECT_EQ(ic.size(), 100u);
}

TEST(PlanetesimalDisk, StructureAndUnits) {
  DiskParams params;
  const auto ic = planetesimalDisk(1000, 8, params);
  ASSERT_EQ(ic.size(), 1002u);  // star + planet + n
  // Star at origin with solar mass.
  EXPECT_EQ(ic.positions[0], Vec3(0, 0, 0));
  EXPECT_DOUBLE_EQ(ic.masses[0], 1.0);
  // Planet on a circular orbit at a: v = sqrt(GM/a).
  EXPECT_DOUBLE_EQ(ic.positions[1].x, params.planet_a);
  const double v_expect = std::sqrt(kGravAuMsunYr / params.planet_a);
  EXPECT_NEAR(ic.velocities[1].y, v_expect, 1e-12);
}

TEST(PlanetesimalDisk, BodiesInsideAnnulus) {
  DiskParams params;
  const auto ic = planetesimalDisk(2000, 9, params);
  for (std::size_t i = 2; i < ic.size(); ++i) {
    const double r = std::sqrt(ic.positions[i].x * ic.positions[i].x +
                               ic.positions[i].y * ic.positions[i].y);
    EXPECT_GE(r, params.inner_radius * 0.999);
    EXPECT_LE(r, params.outer_radius * 1.001);
    // Thin disk: |z| << r.
    EXPECT_LT(std::abs(ic.positions[i].z), 0.1 * r);
  }
}

TEST(PlanetesimalDisk, NearKeplerianSpeeds) {
  DiskParams params;
  const auto ic = planetesimalDisk(2000, 10, params);
  RunningStats rel_err;
  for (std::size_t i = 2; i < ic.size(); ++i) {
    const double r = std::sqrt(ic.positions[i].x * ic.positions[i].x +
                               ic.positions[i].y * ic.positions[i].y);
    const double v = ic.velocities[i].length();
    const double v_kep = std::sqrt(kGravAuMsunYr / r);
    rel_err.add(std::abs(v - v_kep) / v_kep);
  }
  EXPECT_LT(rel_err.mean(), 0.01);
}

TEST(PlanetesimalDisk, SurfaceDensityFallsOutward) {
  DiskParams params;
  params.inner_radius = 1.0;
  params.outer_radius = 4.0;
  const auto ic = planetesimalDisk(20000, 11, params);
  // With Sigma ~ r^-1.5, counts per radial annulus of equal width fall
  // as r^-0.5: inner annulus [1,2] should outnumber outer [3,4].
  std::size_t inner = 0, outer = 0;
  for (std::size_t i = 2; i < ic.size(); ++i) {
    const double r = std::sqrt(ic.positions[i].x * ic.positions[i].x +
                               ic.positions[i].y * ic.positions[i].y);
    if (r < 2.0) ++inner;
    else if (r > 3.0) ++outer;
  }
  EXPECT_GT(inner, outer);
}

TEST(InitialConditions, BoundingBox) {
  InitialConditions ic;
  ic.positions = {{0, 0, 0}, {1, 2, 3}, {-1, 0, 5}};
  const auto box = ic.boundingBox();
  EXPECT_EQ(box.lesser_corner, Vec3(-1, 0, 0));
  EXPECT_EQ(box.greater_corner, Vec3(1, 2, 5));
}

}  // namespace
}  // namespace paratreet
