#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <map>
#include <set>

#include "apps/sph/knn.hpp"
#include "core/forest.hpp"

namespace paratreet {
namespace {

/// Data that counts particles (needed to verify coverage invariants).
struct CountData {
  int count{0};
  CountData() = default;
  CountData(const Particle*, int n) : count(n) {}
  CountData& operator+=(const CountData& o) {
    count += o.count;
    return *this;
  }
};

/// Opens everything; counts leaf-level source particles seen per target.
/// After a full traversal every target particle must have seen every
/// particle in the universe exactly once.
struct CoverageVisitor {
  bool open(const SpatialNode<CountData>&, SpatialNode<CountData>&) const {
    return true;
  }
  void node(const SpatialNode<CountData>&, SpatialNode<CountData>&) const {}
  void leaf(const SpatialNode<CountData>& source,
            SpatialNode<CountData>& target) const {
    for (int i = 0; i < target.n_particles; ++i) {
      // Abuse the density field as a per-particle interaction counter.
      target.particle(i).density += source.n_particles;
    }
  }
};

/// Prunes at internal nodes, consuming summaries; checks that
/// node()+leaf() interactions cover each (target, source-particle) pair
/// exactly once regardless of where pruning cuts the tree.
struct PruningVisitor {
  bool open(const SpatialNode<CountData>& source,
            SpatialNode<CountData>& target) const {
    // Geometric, deterministic pruning: open near nodes only.
    return source.box.distanceSquared(target.box.center()) < 0.05;
  }
  void node(const SpatialNode<CountData>& source,
            SpatialNode<CountData>& target) const {
    for (int i = 0; i < target.n_particles; ++i) {
      target.particle(i).density += source.data.count;
    }
  }
  void leaf(const SpatialNode<CountData>& source,
            SpatialNode<CountData>& target) const {
    for (int i = 0; i < target.n_particles; ++i) {
      target.particle(i).density += source.n_particles;
    }
  }
};

Configuration testConfig() {
  Configuration conf;
  conf.min_partitions = 5;
  conf.min_subtrees = 4;
  conf.bucket_size = 10;
  return conf;
}

class TraversalCoverageTest
    : public ::testing::TestWithParam<
          std::tuple<int, int, TraversalStyle, EvalKernel>> {};

TEST_P(TraversalCoverageTest, EveryPairCountedOnce) {
  const auto [procs, workers, style, kernel] = GetParam();
  rts::Runtime rt({procs, workers});
  Forest<CountData, OctTreeType> forest(rt, testConfig());
  const std::size_t n = 400;
  forest.load(makeParticles(uniformCube(n, 31)));
  forest.decompose();
  forest.build();
  forest.traverse<CoverageVisitor>({}, style, kernel);
  for (const auto& p : forest.collect()) {
    EXPECT_DOUBLE_EQ(p.density, static_cast<double>(n)) << "order " << p.order;
  }
}

TEST_P(TraversalCoverageTest, PruningStillCoversEveryPair) {
  const auto [procs, workers, style, kernel] = GetParam();
  rts::Runtime rt({procs, workers});
  Forest<CountData, OctTreeType> forest(rt, testConfig());
  const std::size_t n = 400;
  forest.load(makeParticles(uniformCube(n, 37)));
  forest.decompose();
  forest.build();
  forest.traverse<PruningVisitor>({}, style, kernel);
  for (const auto& p : forest.collect()) {
    EXPECT_DOUBLE_EQ(p.density, static_cast<double>(n)) << "order " << p.order;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ProcGrid, TraversalCoverageTest,
    ::testing::Combine(::testing::Values(1, 2, 4), ::testing::Values(1, 2),
                       ::testing::Values(TraversalStyle::kTransposed,
                                         TraversalStyle::kPerBucket),
                       ::testing::Values(EvalKernel::kVisitor,
                                         EvalKernel::kBatched)),
    [](const auto& info) {
      const TraversalStyle s = std::get<2>(info.param);
      const EvalKernel k = std::get<3>(info.param);
      return std::string(s == TraversalStyle::kTransposed ? "Transposed"
                                                          : "PerBucket") +
             std::string(k == EvalKernel::kBatched ? "Batched" : "Visitor") +
             "_p" + std::to_string(std::get<0>(info.param)) + "_w" +
             std::to_string(std::get<1>(info.param));
    });

TEST(Traversal, TransposedAndPerBucketAgree) {
  rts::Runtime rt({2, 2});
  auto run = [&](TraversalStyle style) {
    Forest<CountData, OctTreeType> forest(rt, testConfig());
    forest.load(makeParticles(uniformCube(500, 41)));
    forest.decompose();
    forest.build();
    forest.traverse<PruningVisitor>({}, style);
    return forest.collect();
  };
  const auto a = run(TraversalStyle::kTransposed);
  const auto b = run(TraversalStyle::kPerBucket);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].density, b[i].density);
  }
}

// --- k-nearest-neighbour (up-and-down) correctness ---------------------------

std::vector<std::pair<double, int>> bruteForceKnn(
    const std::vector<Particle>& ps, const Vec3& pos, int k) {
  std::vector<std::pair<double, int>> d;
  d.reserve(ps.size());
  for (const auto& p : ps) {
    d.push_back({distanceSquared(p.position, pos), p.order});
  }
  std::sort(d.begin(), d.end());
  d.resize(static_cast<std::size_t>(k));
  return d;
}

class KnnTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(KnnTest, MatchesBruteForce) {
  const auto [k, procs] = GetParam();
  rts::Runtime rt({procs, 2});
  Configuration conf = testConfig();
  Forest<CountData, OctTreeType> forest(rt, conf);
  auto particles = makeParticles(uniformCube(350, 53));
  const auto reference = particles;
  forest.load(std::move(particles));
  forest.decompose();
  forest.build();

  NeighborStore store(reference.size(), k);
  forest.forEachParticle([](Particle& p) { p.ball2 = kInfiniteBall; });
  forest.traverseUpAndDown(KNearestVisitor<CountData>{&store});

  // Spot-check a sample of particles against brute force.
  for (int order : {0, 17, 99, 250, 349}) {
    const auto expected =
        bruteForceKnn(reference, reference[static_cast<std::size_t>(order)].position, k);
    auto heap = store.neighbors(order);
    ASSERT_EQ(heap.size(), static_cast<std::size_t>(k)) << "order " << order;
    std::sort(heap.begin(), heap.end(),
              [](const Neighbor& a, const Neighbor& b) { return a.d2 < b.d2; });
    for (int i = 0; i < k; ++i) {
      EXPECT_NEAR(heap[static_cast<std::size_t>(i)].d2, expected[static_cast<std::size_t>(i)].first,
                  1e-12)
          << "order " << order << " rank " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, KnnTest,
                         ::testing::Combine(::testing::Values(1, 4, 16),
                                            ::testing::Values(1, 3)),
                         [](const auto& info) {
                           return "k" + std::to_string(std::get<0>(info.param)) +
                                  "_p" + std::to_string(std::get<1>(info.param));
                         });

TEST(KnnTest, SelfIsNearestNeighbor) {
  rts::Runtime rt({2, 1});
  Forest<CountData, OctTreeType> forest(rt, testConfig());
  auto particles = makeParticles(uniformCube(200, 59));
  forest.load(std::move(particles));
  forest.decompose();
  forest.build();
  NeighborStore store(200, 4);
  forest.forEachParticle([](Particle& p) { p.ball2 = kInfiniteBall; });
  forest.traverseUpAndDown(KNearestVisitor<CountData>{&store});
  for (int order = 0; order < 200; ++order) {
    const auto& nbrs = store.neighbors(order);
    bool has_self = false;
    for (const auto& nb : nbrs) {
      if (nb.order == order) {
        has_self = true;
        EXPECT_DOUBLE_EQ(nb.d2, 0.0);
      }
    }
    EXPECT_TRUE(has_self) << "order " << order;
  }
}

TEST(NeighborStore, HeapSemantics) {
  NeighborStore store(1, 3);
  Particle target;
  target.order = 0;
  target.position = Vec3(0, 0, 0);
  target.ball2 = kInfiniteBall;
  auto src = [](double x, int order) {
    Particle p;
    p.position = Vec3(x, 0, 0);
    p.order = order;
    p.mass = 1.0;
    return p;
  };
  store.consider(target, src(5.0, 1));
  EXPECT_TRUE(std::isinf(target.ball2));  // not full yet
  store.consider(target, src(1.0, 2));
  store.consider(target, src(3.0, 3));
  EXPECT_DOUBLE_EQ(target.ball2, 25.0);  // full: farthest is x=5
  store.consider(target, src(2.0, 4));   // evicts x=5
  EXPECT_DOUBLE_EQ(target.ball2, 9.0);
  store.consider(target, src(10.0, 5));  // too far: ignored
  EXPECT_DOUBLE_EQ(target.ball2, 9.0);
  std::set<int> orders;
  for (const auto& nb : store.neighbors(0)) orders.insert(nb.order);
  EXPECT_EQ(orders, (std::set<int>{2, 3, 4}));
}

TEST(Traversal, UpAndDownVisitsOwnLeafFirst) {
  // The kNN ball after up-and-down must match pure top-down results;
  // this exercises the descend/ascend machinery across processes.
  rts::Runtime rt({3, 2});
  Configuration conf = testConfig();
  conf.min_partitions = 8;
  Forest<CountData, OctTreeType> forest(rt, conf);
  auto particles = makeParticles(clustered(400, 61, 4, 0.05));
  const auto reference = particles;
  forest.load(std::move(particles));
  forest.decompose();
  forest.build();
  NeighborStore store(reference.size(), 8);
  forest.forEachParticle([](Particle& p) { p.ball2 = kInfiniteBall; });
  forest.traverseUpAndDown(KNearestVisitor<CountData>{&store});
  for (int order : {5, 100, 333}) {
    const auto expected =
        bruteForceKnn(reference, reference[static_cast<std::size_t>(order)].position, 8);
    auto heap = store.neighbors(order);
    std::sort(heap.begin(), heap.end(),
              [](const Neighbor& a, const Neighbor& b) { return a.d2 < b.d2; });
    ASSERT_EQ(heap.size(), 8u);
    EXPECT_NEAR(heap.back().d2, expected.back().first, 1e-12);
  }
}

}  // namespace
}  // namespace paratreet
